"""Command-line runner: ``python -m repro.experiments <target> [options]``.

Targets are the paper's tables/figures (``table1``, ``fig2`` … ``fig10``)
or ``all``.  Example::

    python -m repro.experiments fig8 --scale quick --seed 1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig2_drift,
    fig3_flat_algorithms,
    fig4_hier_jupiter,
    fig5_hier_hydra,
    fig6_hier_titan,
    fig7_barrier_impact,
    fig8_imbalance,
    fig9_roundtime,
    fig10_tracing,
    table1_machines,
)


def _run_table1(scale: str, seed: int) -> str:
    return table1_machines.format_result(table1_machines.run(seed=seed))


def _run_fig2(scale: str, seed: int) -> str:
    duration = 60.0 if scale == "quick" else 200.0
    nodes = 4 if scale == "quick" else 10
    return fig2_drift.format_result(
        fig2_drift.run(num_nodes=nodes, duration=duration, interval=1.0,
                       seed=seed)
    )


def _simple(module):
    def runner(scale: str, seed: int) -> str:
        return module.format_result(module.run(scale=scale, seed=seed))

    return runner


TARGETS = {
    "table1": _run_table1,
    "fig2": _run_fig2,
    "fig3": _simple(fig3_flat_algorithms),
    "fig4": _simple(fig4_hier_jupiter),
    "fig5": _simple(fig5_hier_hydra),
    "fig6": _simple(fig6_hier_titan),
    "fig7": _simple(fig7_barrier_impact),
    "fig8": _simple(fig8_imbalance),
    "fig9": _simple(fig9_roundtime),
    "fig10": _simple(fig10_tracing),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the paper.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument("--scale", default="quick",
                        choices=["quick", "default"],
                        help="experiment size (see EXPERIMENTS.md)")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    targets = sorted(TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        t0 = time.time()
        output = TARGETS[name](args.scale, args.seed)
        print(output)
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
