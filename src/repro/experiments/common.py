"""Shared experiment machinery: scales, sync-accuracy campaign runner.

The accuracy campaign (used by Figs. 3–6) mirrors the paper's methodology:
for each algorithm configuration, run ``nmpiruns`` independent simulated
jobs (fresh clocks and network jitter per run — a new ``mpirun``); in each
job, synchronize clocks, then run CHECK_CLOCK_ACCURACY (Algorithm 6) at
each waiting time.  One scatter point of Figs. 3–6 is one job: x = the
synchronization duration (max across ranks, including communicator
creation for hierarchical schemes), y = the measured maximum clock offset.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.accuracy import check_clock_accuracy, max_abs_offset
from repro.cluster.machines import MachineSpec
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.offset import SKaMPIOffset
from repro.sync.registry import algorithm_from_label


@dataclass(frozen=True)
class Scale:
    """Experiment size knobs (see EXPERIMENTS.md for the per-figure map)."""

    num_nodes: int
    ranks_per_node: int
    nfitpoints: int
    nexchanges: int
    fitpoint_spacing: float
    nmpiruns: int
    #: JK uses 1/5 the ping-pongs per fit point in the paper's labels
    #: (jk/1000/skampi/20 vs hca*/1000/skampi/100); its fit-point spacing
    #: scales accordingly (but not fully, to keep estimates usable at the
    #: reduced simulation scale).
    jk_spacing_factor: float = 0.5

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ranks_per_node


#: CI-friendly: seconds of wall time per figure.
QUICK = Scale(
    num_nodes=8,
    ranks_per_node=2,
    nfitpoints=15,
    nexchanges=10,
    fitpoint_spacing=2e-3,
    nmpiruns=3,
)

#: Default reproduction scale (minutes of wall time per figure).
DEFAULT = Scale(
    num_nodes=16,
    ranks_per_node=4,
    nfitpoints=50,
    nexchanges=20,
    fitpoint_spacing=5e-3,
    nmpiruns=10,
)

SCALES = {"quick": QUICK, "default": DEFAULT}


def resolve_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


#: Drift-stability presets per machine (calibrated in EXPERIMENTS.md):
#: Jupiter's clocks are stable (the paper's JK is accurate there); Hydra's
#: "clock drift between processes changes rather quickly"; Titan shows the
#: largest variance.
MACHINE_TIME_SOURCES: dict[str, TimeSourceSpec] = {
    "jupiter": CLOCK_GETTIME.with_(skew_walk_sigma=4e-8),
    "hydra": CLOCK_GETTIME.with_(skew_walk_sigma=2e-7),
    "titan": CLOCK_GETTIME.with_(skew_walk_sigma=3e-7),
}


@dataclass
class SyncRun:
    """One scatter point: one algorithm config in one simulated mpirun."""

    label: str
    duration: float
    #: wait_time -> measured max |offset| across checked clients (seconds).
    max_offsets: dict[float, float] = field(default_factory=dict)


@dataclass
class SyncCampaignResult:
    """All runs of a Figs. 3–6-style accuracy campaign."""

    machine: str
    nprocs: int
    wait_times: tuple[float, ...]
    runs: list[SyncRun] = field(default_factory=list)

    def by_label(self) -> dict[str, list[SyncRun]]:
        out: dict[str, list[SyncRun]] = {}
        for run in self.runs:
            out.setdefault(run.label, []).append(run)
        return out

    def mean_offset(self, label: str, wait: float) -> float:
        runs = [r for r in self.runs if r.label == label]
        return float(np.mean([r.max_offsets[wait] for r in runs]))

    def mean_duration(self, label: str) -> float:
        runs = [r for r in self.runs if r.label == label]
        return float(np.mean([r.duration for r in runs]))


def run_sync_accuracy_campaign(
    spec: MachineSpec,
    labels: Sequence[str],
    scale: str | Scale = "quick",
    wait_times: Sequence[float] = (0.0, 10.0),
    sample_fraction: float = 1.0,
    seed: int = 0,
    time_source: TimeSourceSpec | None = None,
) -> SyncCampaignResult:
    """Figs. 3–6 engine: accuracy-vs-duration for several algorithm labels."""
    sc = resolve_scale(scale)
    ts = time_source or MACHINE_TIME_SOURCES.get(spec.name, CLOCK_GETTIME)
    machine = spec.machine(sc.num_nodes, sc.ranks_per_node)
    result = SyncCampaignResult(
        machine=spec.name,
        nprocs=machine.num_ranks,
        wait_times=tuple(wait_times),
    )
    check_offset_alg = SKaMPIOffset(nexchanges=sc.nexchanges)

    for label in labels:
        spacing = sc.fitpoint_spacing
        if label.strip().lower().startswith("jk"):
            spacing *= sc.jk_spacing_factor
        for run_idx in range(sc.nmpiruns):
            # Fresh instance per run: algorithms may carry per-engine caches.
            algorithm = algorithm_from_label(label, fitpoint_spacing=spacing)
            run = _one_sync_run(
                machine_spec=spec,
                machine=machine,
                algorithm=algorithm,
                label=label,
                wait_times=tuple(wait_times),
                sample_fraction=sample_fraction,
                check_offset_alg=check_offset_alg,
                time_source=ts,
                seed=seed * 10_000 + (zlib.crc32(label.encode()) % 997) * 101
                + run_idx,
            )
            result.runs.append(run)
    return result


def _one_sync_run(
    machine_spec: MachineSpec,
    machine,
    algorithm: ClockSyncAlgorithm,
    label: str,
    wait_times: tuple[float, ...],
    sample_fraction: float,
    check_offset_alg,
    time_source: TimeSourceSpec,
    seed: int,
) -> SyncRun:
    def main(ctx, comm):
        t0 = ctx.now
        global_clock = yield from algorithm.sync_clocks(
            comm, ctx.hardware_clock
        )
        duration = ctx.now - t0
        offsets = yield from check_clock_accuracy(
            comm,
            global_clock,
            check_offset_alg,
            wait_times=wait_times,
            sample_fraction=sample_fraction,
            sample_seed=seed,
        )
        return (duration, offsets)

    sim = Simulation(
        machine=machine,
        network=machine_spec.network(),
        time_source=time_source,
        seed=seed,
        fabric=machine_spec.fabric(machine.num_nodes),
    )
    values = sim.run(main).values
    duration = max(v[0] for v in values)
    offsets_by_wait = values[0][1]
    return SyncRun(
        label=label,
        duration=duration,
        max_offsets={
            wait: max_abs_offset(per_client)
            for wait, per_client in offsets_by_wait.items()
        },
    )
