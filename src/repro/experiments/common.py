"""Shared experiment machinery: scales, sync-accuracy campaign runner.

The accuracy campaign (used by Figs. 3–6) mirrors the paper's methodology:
for each algorithm configuration, run ``nmpiruns`` independent simulated
jobs (fresh clocks and network jitter per run — a new ``mpirun``); in each
job, synchronize clocks, then run CHECK_CLOCK_ACCURACY (Algorithm 6) at
each waiting time.  One scatter point of Figs. 3–6 is one job: x = the
synchronization duration (max across ranks, including communicator
creation for hierarchical schemes), y = the measured maximum clock offset.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.accuracy import check_clock_accuracy, max_abs_offset
from repro.check import active_check_mode, check_global_clock
from repro.cluster.machines import MachineSpec
from repro.obs.timeseries import get_default_timeseries
from repro.parallel import JobSpec, job_seeds, run_jobs, seed_int
from repro.prof import get_default_profiler
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.offset import SKaMPIOffset
from repro.sync.registry import algorithm_from_label


@dataclass(frozen=True)
class Scale:
    """Experiment size knobs (see EXPERIMENTS.md for the per-figure map)."""

    num_nodes: int
    ranks_per_node: int
    nfitpoints: int
    nexchanges: int
    fitpoint_spacing: float
    nmpiruns: int
    #: JK uses 1/5 the ping-pongs per fit point in the paper's labels
    #: (jk/1000/skampi/20 vs hca*/1000/skampi/100); its fit-point spacing
    #: scales accordingly (but not fully, to keep estimates usable at the
    #: reduced simulation scale).
    jk_spacing_factor: float = 0.5

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ranks_per_node


#: CI-friendly: seconds of wall time per figure.
QUICK = Scale(
    num_nodes=8,
    ranks_per_node=2,
    nfitpoints=15,
    nexchanges=10,
    fitpoint_spacing=2e-3,
    nmpiruns=3,
)

#: Default reproduction scale (minutes of wall time per figure).
DEFAULT = Scale(
    num_nodes=16,
    ranks_per_node=4,
    nfitpoints=50,
    nexchanges=20,
    fitpoint_spacing=5e-3,
    nmpiruns=10,
)

SCALES = {"quick": QUICK, "default": DEFAULT}


def resolve_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


#: Drift-stability presets per machine (calibrated in EXPERIMENTS.md):
#: Jupiter's clocks are stable (the paper's JK is accurate there); Hydra's
#: "clock drift between processes changes rather quickly"; Titan shows the
#: largest variance.
MACHINE_TIME_SOURCES: dict[str, TimeSourceSpec] = {
    "jupiter": CLOCK_GETTIME.with_(skew_walk_sigma=4e-8),
    "hydra": CLOCK_GETTIME.with_(skew_walk_sigma=2e-7),
    "titan": CLOCK_GETTIME.with_(skew_walk_sigma=3e-7),
}


@dataclass
class SyncRun:
    """One scatter point: one algorithm config in one simulated mpirun."""

    label: str
    duration: float
    #: wait_time -> measured max |offset| across checked clients (seconds).
    max_offsets: dict[float, float] = field(default_factory=dict)


@dataclass
class SyncCampaignResult:
    """All runs of a Figs. 3–6-style accuracy campaign."""

    machine: str
    nprocs: int
    wait_times: tuple[float, ...]
    runs: list[SyncRun] = field(default_factory=list)

    def by_label(self) -> dict[str, list[SyncRun]]:
        out: dict[str, list[SyncRun]] = {}
        for run in self.runs:
            out.setdefault(run.label, []).append(run)
        return out

    def mean_offset(self, label: str, wait: float) -> float:
        runs = [r for r in self.runs if r.label == label]
        return float(np.mean([r.max_offsets[wait] for r in runs]))

    def mean_duration(self, label: str) -> float:
        runs = [r for r in self.runs if r.label == label]
        return float(np.mean([r.duration for r in runs]))


def run_sync_accuracy_campaign(
    spec: MachineSpec,
    labels: Sequence[str],
    scale: str | Scale = "quick",
    wait_times: Sequence[float] = (0.0, 10.0),
    sample_fraction: float = 1.0,
    seed: int = 0,
    time_source: TimeSourceSpec | None = None,
    jobs: int | None = 1,
) -> SyncCampaignResult:
    """Figs. 3–6 engine: accuracy-vs-duration for several algorithm labels.

    **Seed derivation.**  One root ``SeedSequence(seed)`` spawns one child
    per ``(label, run_idx)`` pair in submission order (label-major), so
    every simulated mpirun draws from a provably independent stream.  The
    previous scheme folded ``crc32(label) % 997`` into an integer, which
    could collide across labels/seeds; the spawn-based derivation cannot,
    and it depends only on the job's position — not on which process runs
    it — which is what makes ``jobs=N`` bit-identical to ``jobs=1``.

    ``jobs`` fans the independent mpiruns out over worker processes
    (``None``/``0`` = all cores); results are collected in submission
    order either way.
    """
    sc = resolve_scale(scale)
    ts = time_source or MACHINE_TIME_SOURCES.get(spec.name, CLOCK_GETTIME)
    machine = spec.machine(sc.num_nodes, sc.ranks_per_node)
    result = SyncCampaignResult(
        machine=spec.name,
        nprocs=machine.num_ranks,
        wait_times=tuple(wait_times),
    )

    labels = list(labels)
    seeds = job_seeds(seed, len(labels) * sc.nmpiruns)
    specs: list[JobSpec] = []
    for label_idx, label in enumerate(labels):
        spacing = sc.fitpoint_spacing
        if label.strip().lower().startswith("jk"):
            spacing *= sc.jk_spacing_factor
        for run_idx in range(sc.nmpiruns):
            specs.append(JobSpec(
                fn=_campaign_job,
                kwargs=dict(
                    machine_spec=spec,
                    label=label,
                    fitpoint_spacing=spacing,
                    nexchanges=sc.nexchanges,
                    wait_times=tuple(wait_times),
                    sample_fraction=sample_fraction,
                    time_source=ts,
                    num_nodes=sc.num_nodes,
                    ranks_per_node=sc.ranks_per_node,
                    seedseq=seeds[label_idx * sc.nmpiruns + run_idx],
                    scope=f"{label}#{run_idx}",
                ),
                label=f"{label}#{run_idx}",
            ))
    result.runs = run_jobs(specs, jobs=jobs)
    return result


def _campaign_job(
    machine_spec: MachineSpec,
    label: str,
    fitpoint_spacing: float,
    nexchanges: int,
    wait_times: tuple[float, ...],
    sample_fraction: float,
    time_source: TimeSourceSpec,
    num_nodes: int,
    ranks_per_node: int,
    seedseq: np.random.SeedSequence,
    scope: str = "",
) -> SyncRun:
    """One campaign scatter point; runs in-process or in a worker.

    Everything (machine, algorithm, offset measurer) is reconstructed
    from primitive, picklable arguments so the job behaves identically
    wherever it executes.  A fresh algorithm instance per run matters:
    algorithms may carry per-engine caches.

    With a process-wide telemetry bank installed, the job deposits its
    clock-health series (per-rank sync duration and estimated-vs-rank-0
    global-clock error over the accuracy-check window, plus whatever the
    engine/sync layers sample) under ``scope`` — the executor merges the
    per-job banks back into the campaign-level bank.
    """
    machine = machine_spec.machine(num_nodes, ranks_per_node)
    algorithm = algorithm_from_label(label, fitpoint_spacing=fitpoint_spacing)
    check_offset_alg = SKaMPIOffset(nexchanges=nexchanges)
    sample_seed = seed_int(seedseq)
    bank = get_default_timeseries()
    prof = get_default_profiler()

    def main(ctx, comm):
        t0 = ctx.now
        global_clock = yield from algorithm.sync_clocks(
            comm, ctx.hardware_clock
        )
        duration = ctx.now - t0
        offsets = yield from check_clock_accuracy(
            comm,
            global_clock,
            check_offset_alg,
            wait_times=wait_times,
            sample_fraction=sample_fraction,
            sample_seed=sample_seed,
        )
        return (duration, offsets, global_clock)

    with (
        bank.scoped(scope) if bank is not None else nullcontext(),
        # Per-algorithm attribution: every engine/sync zone of this
        # mpirun nests under the algorithm label, so merged campaign
        # profiles break wall time down per algorithm family.  Runs of
        # one label aggregate into one subtree (the run index is not
        # part of the zone name on purpose).
        prof.zone(f"job:{label}") if prof is not None else nullcontext(),
    ):
        sim = Simulation(
            machine=machine,
            network=machine_spec.network(),
            time_source=time_source,
            seed=seedseq,
            fabric=machine_spec.fabric(machine.num_nodes),
        )
        values = sim.run(main).values
        duration = max(v[0] for v in values)
        offsets_by_wait = values[0][1]
        if active_check_mode() is not None:
            # Sanitize the synchronized clocks too: every rank's global
            # clock must stay finite, monotone, and slope-≈1 over the
            # accuracy-check window (no fault schedule runs here, so
            # monotonicity is a hard requirement).
            span = max(wait_times) if wait_times else 1.0
            for rank, value in enumerate(values):
                check_global_clock(
                    value[2], duration, duration + max(span, 1.0),
                    rank=rank, label=scope,
                )
        if bank is not None:
            _sample_campaign_telemetry(bank, values, duration, wait_times)
    return SyncRun(
        label=label,
        duration=duration,
        max_offsets={
            wait: max_abs_offset(per_client)
            for wait, per_client in offsets_by_wait.items()
        },
    )


def campaign_summary(result: SyncCampaignResult) -> dict:
    """Canonical, JSON-ready summary of a campaign result.

    Contains every scatter point (label, duration, per-wait max offsets)
    in submission order plus the campaign shape — exactly the data the
    figures are drawn from.  Floats are kept at full precision: the
    simulator is deterministic per seed, so the golden tests pin the
    summary byte-for-byte (see ``tests/experiments/test_golden.py``).
    """
    return {
        "machine": result.machine,
        "nprocs": result.nprocs,
        "wait_times": list(result.wait_times),
        "runs": [
            {
                "label": run.label,
                "duration": run.duration,
                "max_offsets": {
                    f"{wait:g}": offset
                    for wait, offset in sorted(run.max_offsets.items())
                },
            }
            for run in result.runs
        ],
    }


def summary_json(result: SyncCampaignResult) -> str:
    """``campaign_summary`` as deterministic JSON (sorted keys, LF EOL)."""
    return json.dumps(
        campaign_summary(result), indent=2, sort_keys=True
    ) + "\n"


#: Grid points of the post-sync clock-error trajectory per campaign job.
_ERROR_GRID_POINTS = 25


def _sample_campaign_telemetry(bank, values, duration, wait_times) -> None:
    """Deposit one job's clock-health series into the telemetry bank.

    ``clock.error`` is each rank's estimated global clock read against
    rank 0's (the sync reference) on a regular true-time grid spanning
    the accuracy-check window — rank 0 against itself is identically
    zero and is skipped.  Purely post-hoc: the simulation is finished,
    so the reads cannot perturb it.
    """
    for rank, value in enumerate(values):
        bank.sample("sync.duration", value[0], value[0], rank=rank)
    clocks = [value[2] for value in values]
    span = max(wait_times) if wait_times else 0.0
    horizon = duration + (span if span > 0.0 else 1.0)
    # One read_many per clock resolves the whole grid (array pass per
    # model layer) instead of a rank x grid scalar loop; the emission
    # order and every double are identical to the scalar version
    # (read_many is pinned bit-identical to per-element read).
    grid = [
        duration + (horizon - duration) * i / (_ERROR_GRID_POINTS - 1)
        for i in range(_ERROR_GRID_POINTS)
    ]
    ts = np.asarray(grid, dtype=np.float64)
    ref_reads = clocks[0].read_many(ts)
    errors = [clk.read_many(ts) - ref_reads for clk in clocks[1:]]
    for i, t in enumerate(grid):
        for rank, err in enumerate(errors, start=1):
            bank.sample("clock.error", t, float(err[i]), rank=rank)
