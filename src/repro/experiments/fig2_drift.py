"""Fig. 2: clock drift of MPI ranks against a reference process.

* Fig. 2a/2b: offsets over 500 s drift by hundreds of µs and are visibly
  non-linear (a single global linear fit leaves large residuals).
* Fig. 2c: over a 10 s window the drift is linear (R² usually > 0.9).

Setup mirrors the paper: one rank per compute node on Hydra (so every pair
is inter-node), offsets measured against rank 0 with SKaMPI-Offset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.drift import (
    DriftTrace,
    detrended_range,
    drift_linearity,
    extrapolation_error,
    mean_r_squared,
    record_drift,
)
from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import HYDRA
from repro.experiments.common import MACHINE_TIME_SOURCES
from repro.simmpi.simulation import Simulation
from repro.sync.offset import SKaMPIOffset


@dataclass
class Fig2Result:
    traces: dict[int, DriftTrace]
    duration: float
    #: windowed R² over the short (linear) window, averaged over ranks.
    r2_short_window: float
    #: windowed R² over the long window (degraded), averaged over ranks.
    r2_long_window: float
    #: max residual range (s) after a global linear fit, over ranks.
    max_detrended_range: float
    #: max over ranks of the end-of-trace error of an early-window fit (s).
    max_extrapolation_error: float
    short_window: float
    long_window: float


def run(
    num_nodes: int = 10,
    duration: float = 100.0,
    interval: float = 1.0,
    short_window: float = 10.0,
    long_window: float | None = None,
    nexchanges: int = 10,
    seed: int = 0,
) -> Fig2Result:
    """Record drift traces and the linearity statistics of Fig. 2.

    ``duration`` defaults to 100 s (the paper's 500 s scaled down 5×; the
    qualitative contrast between the short and the long window is already
    unambiguous at 100 s — see EXPERIMENTS.md).
    """
    if long_window is None:
        long_window = duration
    machine = HYDRA.machine(num_nodes, 1)
    offset_alg = SKaMPIOffset(nexchanges=nexchanges)

    def main(ctx, comm):
        traces = yield from record_drift(
            comm,
            ctx.hardware_clock,
            duration=duration,
            interval=interval,
            offset_alg=offset_alg,
        )
        return traces

    sim = Simulation(
        machine=machine,
        network=HYDRA.network(),
        time_source=MACHINE_TIME_SOURCES["hydra"],
        seed=seed,
    )
    traces = sim.run(main).values[0]
    trace_list = list(traces.values())
    return Fig2Result(
        traces=traces,
        duration=duration,
        r2_short_window=mean_r_squared(trace_list, short_window),
        r2_long_window=mean_r_squared(trace_list, long_window),
        max_detrended_range=max(detrended_range(t) for t in trace_list),
        max_extrapolation_error=max(
            extrapolation_error(t, short_window) for t in trace_list
        ),
        short_window=short_window,
        long_window=long_window,
    )


def format_result(result: Fig2Result) -> str:
    table = Table(
        title=(
            "Fig. 2: clock drift vs reference rank "
            f"(Hydra, {len(result.traces)} clients, {result.duration:.0f} s)"
        ),
        columns=["rank", "total drift [us]", "detrended range [us]",
                 f"R2 @{result.short_window:.0f}s"],
    )
    for rank, trace in sorted(result.traces.items()):
        drift_us = (trace.offsets[-1] - trace.offsets[0]) * 1e6
        r2s = drift_linearity(trace, result.short_window)
        import numpy as np

        mean_r2 = float(np.mean([r for _, r in r2s])) if r2s else float("nan")
        table.add_row(
            rank,
            f"{drift_us:.1f}",
            f"{detrended_range(trace) * 1e6:.2f}",
            f"{mean_r2:.3f}",
        )
    lines = [format_table(table)]
    lines.append(
        f"mean R2 over {result.short_window:.0f}s windows: "
        f"{result.r2_short_window:.3f} (paper: > 0.9)"
    )
    lines.append(
        f"mean R2 over {result.long_window:.0f}s window:  "
        f"{result.r2_long_window:.3f}"
    )
    lines.append(
        f"max extrapolation error of a {result.short_window:.0f}s fit at "
        f"t={result.duration:.0f}s: "
        f"{result.max_extrapolation_error * 1e6:.1f} us "
        "(paper: linearity breaks down over long horizons)"
    )
    return "\n".join(lines)
