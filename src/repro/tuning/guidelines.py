"""Self-consistent MPI performance guidelines (Träff/Gropp/Thakur).

A performance guideline states that a specialized collective should never
be slower than a semantically equivalent emulation built from other
collectives — e.g. ``MPI_Allreduce(n) ≼ MPI_Reduce(n) + MPI_Bcast(n)``.
PGMPITuneLib [paper ref 4] uses measured violations of such guidelines to
find replacement algorithms; the paper's point is that *detecting* a
violation needs trustworthy latency measurements in the first place.

:func:`check_guidelines` measures both sides of each guideline with the
Round-Time scheme (or barrier scheme, to demonstrate false positives) and
reports violations with their slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.schemes import BarrierScheme, RoundTimeScheme
from repro.cluster.topology import Machine
from repro.errors import ConfigurationError
from repro.simmpi.network import NetworkModel
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.hierarchical import h2hca


@dataclass(frozen=True)
class Guideline:
    """``specialized ≼ mock``: the left side should not be slower."""

    name: str
    #: Builds the specialized operation: (msize) -> generator op.
    specialized: Callable[[int], Callable]
    #: Builds the semantically equivalent emulation.
    mock: Callable[[int], Callable]


def _allreduce(msize):
    def op(comm):
        yield from comm.allreduce(1.0, size=msize)

    return op


def _reduce_then_bcast(msize):
    def op(comm):
        total = yield from comm.reduce(1.0, root=0, size=msize)
        yield from comm.bcast(total, root=0, size=msize)

    return op


def _bcast(msize):
    def op(comm):
        yield from comm.bcast(1, root=0, size=msize)

    return op


def _scatter_then_allgather(msize):
    def op(comm):
        seg = max(1, msize // comm.size)
        values = (
            [0] * comm.size if comm.rank == 0 else None
        )
        piece = yield from comm.scatter(values, root=0, size=seg)
        yield from comm.allgather(piece, size=seg)

    return op


def _gather(msize):
    def op(comm):
        yield from comm.gather(1, root=0, size=msize)

    return op


def _allgather_everyone(msize):
    def op(comm):
        yield from comm.allgather(1, size=msize)

    return op


#: The classic self-consistent guidelines the paper's refs [5, 6] verify.
STANDARD_GUIDELINES: tuple[Guideline, ...] = (
    Guideline(
        name="Allreduce <= Reduce + Bcast",
        specialized=_allreduce,
        mock=_reduce_then_bcast,
    ),
    Guideline(
        name="Bcast <= Scatter + Allgather",
        specialized=_bcast,
        mock=_scatter_then_allgather,
    ),
    Guideline(
        name="Gather <= Allgather",
        specialized=_gather,
        mock=_allgather_everyone,
    ),
)


@dataclass
class GuidelineReport:
    """Measured outcome of the guideline checks."""

    scheme: str
    msizes: tuple[int, ...]
    #: (guideline name, msize) -> (specialized latency, mock latency).
    measured: dict[tuple[str, int], tuple[float, float]] = field(
        default_factory=dict
    )

    def violations(self, tolerance: float = 0.05) -> list[tuple[str, int]]:
        """Guideline/msize cells where specialized > (1+tol) * mock."""
        out = []
        for (name, msize), (spec, mock) in self.measured.items():
            if spec > (1.0 + tolerance) * mock:
                out.append((name, msize))
        return sorted(out)


def check_guidelines(
    machine: Machine,
    network: NetworkModel,
    guidelines: Sequence[Guideline] = STANDARD_GUIDELINES,
    msizes: tuple[int, ...] = (8, 1024),
    scheme: str = "round_time",
    nreps: int = 30,
    max_time_slice: float = 0.05,
    time_source: TimeSourceSpec = CLOCK_GETTIME,
    seed: int = 0,
) -> GuidelineReport:
    """Measure both sides of every guideline; returns the report."""
    if scheme not in ("round_time", "barrier"):
        raise ConfigurationError("scheme must be round_time or barrier")
    sync = h2hca(nfitpoints=20, fitpoint_spacing=1e-3)
    report = GuidelineReport(scheme=scheme, msizes=tuple(msizes))

    def main(ctx, comm):
        g_clk = None
        if scheme == "round_time":
            g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        cells = {}
        for guideline in guidelines:
            for msize in msizes:
                pair = []
                for side in (guideline.specialized, guideline.mock):
                    op = side(msize)
                    if scheme == "round_time":
                        runner = RoundTimeScheme(
                            lambda c: g_clk,
                            max_time_slice=max_time_slice,
                            max_nrep=nreps,
                        )
                        local = yield from runner.run(comm, op)
                        stat = local.median()
                    else:
                        runner = BarrierScheme(nreps=nreps)
                        local = yield from runner.run(comm, op)
                        stat = local.mean()
                    worst = yield from comm.allreduce(stat, op=max, size=8)
                    pair.append(worst)
                if comm.rank == 0:
                    cells[(guideline.name, msize)] = tuple(pair)
        return cells if comm.rank == 0 else None

    sim = Simulation(machine=machine, network=network,
                     time_source=time_source, seed=seed)
    report.measured = sim.run(main).values[0]
    return report
