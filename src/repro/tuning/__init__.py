"""Collective-algorithm tuning — the paper's motivating application.

The paper's introduction frames everything around PGMPITuneLib [4]: an
autotuner that "empirically evaluates the latency of a specific MPI
operation and several semantically equal replacement algorithms", guided
by self-consistent MPI performance guidelines [5, 6].  The whole point of
HCA3 + Round-Time is that *this tuner's decisions depend on how you
measure* — so the reproduction ships the tuner:

* :mod:`repro.tuning.tuner` — measure every algorithm variant of a
  collective across message sizes with a configurable measurement scheme
  and produce a selection table.
* :mod:`repro.tuning.guidelines` — check Träff-style self-consistent
  performance guidelines (e.g. ``Allreduce ≼ Reduce + Bcast``) against
  measured latencies and report violations.
"""

from repro.tuning.tuner import TuningResult, tune_collective
from repro.tuning.guidelines import (
    Guideline,
    GuidelineReport,
    STANDARD_GUIDELINES,
    check_guidelines,
)

__all__ = [
    "TuningResult",
    "tune_collective",
    "Guideline",
    "GuidelineReport",
    "STANDARD_GUIDELINES",
    "check_guidelines",
]
