"""Measure-and-select tuner for collective algorithm variants.

``tune_collective`` runs inside one simulated job: it synchronizes clocks
(for Round-Time measurement), measures every algorithm variant of the
requested collective at every message size, and returns the per-size
winner — the decision PGMPITuneLib would install in the MPI library's
algorithm-selection table.

Because the measurement scheme is a parameter, the tuner doubles as the
paper's cautionary tale: ``scheme="barrier"`` reproduces the distorted
decisions of Fig. 7, ``scheme="round_time"`` the trustworthy ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.schemes import BarrierScheme, RoundTimeScheme
from repro.cluster.topology import Machine
from repro.errors import ConfigurationError
from repro.simmpi.collectives import (
    ALLGATHER_ALGORITHMS,
    ALLREDUCE_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    BARRIER_ALGORITHMS,
    BCAST_ALGORITHMS,
    REDUCE_ALGORITHMS,
)
from repro.simmpi.network import NetworkModel
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.hierarchical import h2hca

#: Collective name -> (algorithm registry, operation factory).
_COLLECTIVES: dict[str, tuple[dict, Callable]] = {
    "bcast": (
        BCAST_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.bcast(
            1, algorithm=alg, size=msize
        ),
    ),
    "reduce": (
        REDUCE_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.reduce(
            1.0, algorithm=alg, size=msize
        ),
    ),
    "allreduce": (
        ALLREDUCE_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.allreduce(
            1.0, algorithm=alg, size=msize
        ),
    ),
    "allgather": (
        ALLGATHER_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.allgather(
            1, algorithm=alg, size=msize
        ),
    ),
    "alltoall": (
        ALLTOALL_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.alltoall(
            list(range(comm.size)), algorithm=alg, size=msize
        ),
    ),
    "barrier": (
        BARRIER_ALGORITHMS,
        lambda alg, msize: lambda comm: comm.barrier(algorithm=alg),
    ),
}


@dataclass
class TuningResult:
    """Latency table + per-size winners for one collective."""

    collective: str
    scheme: str
    msizes: tuple[int, ...]
    algorithms: tuple[str, ...]
    #: (msize, algorithm) -> measured latency in seconds.
    latency: dict[tuple[int, str], float] = field(default_factory=dict)

    def winner(self, msize: int) -> str:
        candidates = {
            a: self.latency[(msize, a)] for a in self.algorithms
        }
        return min(candidates, key=candidates.get)

    def selection_table(self) -> dict[int, str]:
        """msize -> chosen algorithm (what a library would install)."""
        return {m: self.winner(m) for m in self.msizes}


def collective_operation(collective: str, algorithm: str, msize: int):
    """Build a measurable generator op for (collective, algorithm)."""
    try:
        registry, factory = _COLLECTIVES[collective]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {collective!r}; "
            f"choose from {sorted(_COLLECTIVES)}"
        ) from None
    if algorithm not in registry:
        raise ConfigurationError(
            f"unknown {collective} algorithm {algorithm!r}; "
            f"choose from {sorted(registry)}"
        )
    inner = factory(algorithm, msize)

    def op(comm):
        result = yield from inner(comm)
        return result

    return op


def tune_collective(
    collective: str,
    machine: Machine,
    network: NetworkModel,
    msizes: tuple[int, ...] = (8, 1024, 65536),
    algorithms: tuple[str, ...] | None = None,
    scheme: str = "round_time",
    sync_algorithm: ClockSyncAlgorithm | None = None,
    nreps: int = 30,
    max_time_slice: float = 0.05,
    barrier_algorithm: str = "tree",
    time_source: TimeSourceSpec = CLOCK_GETTIME,
    seed: int = 0,
    fabric=None,
) -> TuningResult:
    """Measure all variants and return the selection table.

    ``scheme`` is "round_time" (global-clock, the paper's recommendation)
    or "barrier" (suite-style, distorted for small payloads).
    """
    registry, _ = _COLLECTIVES.get(collective, (None, None))
    if registry is None:
        raise ConfigurationError(
            f"unknown collective {collective!r}; "
            f"choose from {sorted(_COLLECTIVES)}"
        )
    algorithms = algorithms or tuple(sorted(registry))
    if scheme not in ("round_time", "barrier"):
        raise ConfigurationError("scheme must be round_time or barrier")
    sync = sync_algorithm or h2hca(nfitpoints=20, fitpoint_spacing=1e-3)
    result = TuningResult(
        collective=collective,
        scheme=scheme,
        msizes=tuple(msizes),
        algorithms=tuple(algorithms),
    )

    def main(ctx, comm):
        g_clk = None
        if scheme == "round_time":
            g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        cells = {}
        for msize in msizes:
            for algorithm in algorithms:
                op = collective_operation(collective, algorithm, msize)
                if scheme == "round_time":
                    runner = RoundTimeScheme(
                        lambda c: g_clk,
                        max_time_slice=max_time_slice,
                        max_nrep=nreps,
                    )
                else:
                    runner = BarrierScheme(
                        barrier_algorithm=barrier_algorithm, nreps=nreps
                    )
                local = yield from runner.run(comm, op)
                stat = (
                    local.median()
                    if scheme == "round_time"
                    else local.mean()
                )
                worst = yield from comm.allreduce(stat, op=max, size=8)
                if comm.rank == 0:
                    cells[(msize, algorithm)] = worst
        return cells if comm.rank == 0 else None

    sim = Simulation(
        machine=machine,
        network=network,
        time_source=time_source,
        seed=seed,
        fabric=fabric,
    )
    result.latency = sim.run(main).values[0]
    return result
