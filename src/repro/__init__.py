"""repro — reproduction of "Hierarchical Clock Synchronization in MPI".

Hunold & Carpen-Amarie, IEEE CLUSTER 2018.

Layers (bottom-up):

* :mod:`repro.simtime` — simulated hardware clocks (offset/skew/drift).
* :mod:`repro.simmpi` — deterministic discrete-event MPI substrate.
* :mod:`repro.cluster` — machine presets of the paper's Table I.
* :mod:`repro.sync` — the paper's contribution: HCA3, HlHCA, and the
  baseline algorithms (JK, HCA, HCA2, ClockPropSync).
* :mod:`repro.bench` — measurement schemes (barrier / window / Round-Time)
  and benchmark-suite emulations (OSU-, IMB-, ReproMPI-style).
* :mod:`repro.analysis` — accuracy checks, imbalance, drift statistics.
* :mod:`repro.trace` — global-clock tracing case study (AMG mini-app).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro._version import __version__
from repro.simmpi.simulation import Simulation, SimulationResult
from repro.cluster.machines import MACHINES, hydra, jupiter, titan

__all__ = [
    "__version__",
    "Simulation",
    "SimulationResult",
    "MACHINES",
    "jupiter",
    "hydra",
    "titan",
]
