"""Performance micro-harness: engine throughput + campaign wall time.

See :mod:`repro.perf.harness` for the workloads and the
``BENCH_engine.json`` record format; ``benchmarks/bench_engine_perf.py``
is the command-line front end and :mod:`repro.perf.regress`
(``python -m repro.perf.regress``) is the CI regression gate over the
recorded entries.
"""

from repro.perf.harness import (
    BENCH_FILE,
    campaign_benchmark,
    engine_benchmark,
    load_bench,
    record_bench,
    speedup,
)
from repro.perf.regress import RegressionCheck, check_bench

__all__ = [
    "BENCH_FILE",
    "RegressionCheck",
    "campaign_benchmark",
    "check_bench",
    "engine_benchmark",
    "load_bench",
    "record_bench",
    "speedup",
]
