"""Performance micro-harness: engine throughput + campaign wall time.

See :mod:`repro.perf.harness` for the workloads and the
``BENCH_engine.json`` record format; ``benchmarks/bench_engine_perf.py``
is the command-line front end.
"""

from repro.perf.harness import (
    BENCH_FILE,
    campaign_benchmark,
    engine_benchmark,
    load_bench,
    record_bench,
    speedup,
)

__all__ = [
    "BENCH_FILE",
    "campaign_benchmark",
    "engine_benchmark",
    "load_bench",
    "record_bench",
    "speedup",
]
