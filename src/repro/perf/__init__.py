"""Performance micro-harness: engine throughput + campaign wall time.

See :mod:`repro.perf.harness` for the workloads and the
``BENCH_engine.json`` append-only trajectory format;
``benchmarks/bench_engine_perf.py`` is the command-line front end,
:mod:`repro.perf.scaling` (``python -m repro.perf.scaling``) sweeps the
ring workload over rank counts with per-zone breakdowns, and
:mod:`repro.perf.regress` (``python -m repro.perf.regress``) is the CI
regression gate comparing the latest entry against the best prior one.
"""

from repro.perf.harness import (
    BENCH_FILE,
    BENCH_FORMAT,
    campaign_benchmark,
    engine_benchmark,
    git_describe,
    load_bench,
    record_bench,
    ring_machine,
    service_benchmark,
    speedup,
    upgrade_bench,
)
from repro.perf.regress import RegressionCheck, check_bench

__all__ = [
    "BENCH_FILE",
    "BENCH_FORMAT",
    "RegressionCheck",
    "campaign_benchmark",
    "check_bench",
    "engine_benchmark",
    "git_describe",
    "load_bench",
    "record_bench",
    "ring_machine",
    "service_benchmark",
    "speedup",
    "upgrade_bench",
]
