"""Rank-count scaling probe: ``python -m repro.perf.scaling``.

Sweeps the simulator over a list of rank counts (default
``p ∈ {32, 128, 512, 2048}``) and records, per point, event-loop
throughput (msgs/s, events/s) plus a per-zone wall-time breakdown from a
second, profiled run of the identical workload.  This is the measurement
the ROADMAP's "vectorized sync kernel at p >= 4096" item needs: it shows
*which* engine zone stops scaling first as p grows, not just that the
wall time does.

Two workloads:

* ``ring`` — the :mod:`repro.perf.harness` nearest-neighbour ring with a
  fixed total message budget, so ``nrounds ≈ budget / p`` and every
  point moves a comparable number of messages;
* ``fig3`` — one flat HCA synchronization (the Fig. 3 workload family)
  over all p ranks, whose message count grows ~p·log p like the real
  algorithm.

Results go to the ``BENCH_engine.json`` trajectory via ``--record``:
one entry whose ``scaling`` section :mod:`repro.perf.regress` compares
per rank count against the best prior entry.

CLI::

    python -m repro.perf.scaling [--p 32 128 512 2048] [--workload ring]
                                 [--budget 25600] [--seed 0] [--no-zones]
                                 [--record LABEL] [--output BENCH.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.cluster.netmodels import infiniband_qdr
from repro.perf.harness import (
    BENCH_FILE,
    _ring_main,
    record_bench,
    ring_machine,
)
from repro.prof import Profiler, zone_breakdown
from repro.simmpi.simulation import Simulation

#: Rank counts swept by default — powers of 4 up to the scale where the
#: pure-python kernel becomes the bottleneck (see ROADMAP item 1).
DEFAULT_P = (32, 128, 512, 2048)

#: Ring workload: total messages per point (``nrounds ≈ budget / p``).
DEFAULT_BUDGET = 25600

#: fig3 workload: the flat-HCA label synced once over all p ranks.  Small
#: fit-point/exchange counts keep the largest points tractable; the
#: *scaling* of the traffic pattern with p is what the probe measures.
FIG3_LABEL = "hca/8/skampi_offset/4"

RANKS_PER_NODE = 4


def _fig3_main():
    """SPMD body: one flat-HCA clock synchronization, no accuracy check."""
    from repro.sync.registry import algorithm_from_label

    algorithm = algorithm_from_label(FIG3_LABEL, fitpoint_spacing=1e-3)

    def main(ctx, comm):
        yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return ctx.now

    return main


def _build(p: int, workload: str, budget: int, seed: int):
    """(simulation factory, SPMD body, params dict) for one sweep point."""
    if p < RANKS_PER_NODE or p % RANKS_PER_NODE:
        raise ValueError(
            f"p={p} must be a multiple of {RANKS_PER_NODE}"
        )
    machine = ring_machine(p // RANKS_PER_NODE, RANKS_PER_NODE)

    def make_sim(profiler: Profiler | None = None) -> Simulation:
        return Simulation(
            machine=machine, network=infiniband_qdr(), seed=seed,
            profiler=profiler,
        )

    if workload == "ring":
        nrounds = max(4, budget // p)
        return make_sim, lambda: _ring_main(nrounds), {"nrounds": nrounds}
    if workload == "fig3":
        return make_sim, _fig3_main, {"label": FIG3_LABEL}
    raise ValueError(f"unknown workload {workload!r}")


def probe_point(
    p: int,
    workload: str = "ring",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    zones: bool = True,
) -> dict[str, Any]:
    """Measure one rank count: throughput (unprofiled) + zone breakdown.

    The timing run is unprofiled; ``zones=True`` repeats the identical
    deterministic workload under a profiler so the breakdown costs the
    timing numbers nothing.
    """
    make_sim, make_main, params = _build(p, workload, budget, seed)
    sim = make_sim()
    t0 = time.perf_counter()
    result = sim.run(make_main())
    wall = time.perf_counter() - t0
    stats = sim.engine.stats()
    point: dict[str, Any] = {
        "p": p,
        "workload": workload,
        "seed": seed,
        **params,
        "wall_s": wall,
        "messages": result.messages,
        "msgs_per_sec": result.messages / wall if wall > 0 else 0.0,
        "events_processed": stats["events_processed"],
        "events_per_sec": (
            stats["events_processed"] / wall if wall > 0 else 0.0
        ),
        "max_queue_depth": stats["max_queue_depth"],
    }
    if zones:
        profiler = Profiler()
        make_sim(profiler).run(make_main())
        point["zones"] = zone_breakdown(profiler)
    return point


def scaling_probe(
    p_values=DEFAULT_P,
    workload: str = "ring",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    zones: bool = True,
    verbose: bool = False,
) -> dict[str, Any]:
    """Sweep ``p_values``; returns the entry's ``scaling`` section."""
    points = []
    for p in p_values:
        point = probe_point(
            p, workload=workload, budget=budget, seed=seed, zones=zones
        )
        points.append(point)
        if verbose:
            print(
                f"p={p:5d}: {point['messages']:7d} msgs in "
                f"{point['wall_s']:6.2f}s -> "
                f"{point['msgs_per_sec']:10,.0f} msgs/s, "
                f"{point['events_per_sec']:10,.0f} events/s",
                flush=True,
            )
            if zones:
                rows = sorted(
                    point["zones"]["zones"].items(),
                    key=lambda kv: -kv[1]["self_ns"],
                )
                for path, z in rows[:3]:
                    print(
                        f"         {path}: {z['self_ns'] / 1e6:.1f}ms self "
                        f"({z['count']}x)"
                    )
    return {
        "workload": workload,
        "budget": budget,
        "seed": seed,
        "points": points,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.scaling",
        description="Sweep simulator throughput over rank counts.",
    )
    parser.add_argument(
        "--p", type=int, nargs="+", default=list(DEFAULT_P),
        metavar="P", help=f"rank counts to sweep (default: {DEFAULT_P})",
    )
    parser.add_argument(
        "--workload", choices=["ring", "fig3"], default="ring",
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="ring workload: total messages per point "
             f"(default: {DEFAULT_BUDGET})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-zones", action="store_true",
        help="skip the profiled second run per point (halves runtime)",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append the sweep to the benchmark trajectory under LABEL",
    )
    parser.add_argument(
        "--output", default=BENCH_FILE,
        help=f"trajectory file for --record (default: {BENCH_FILE})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the scaling section as JSON to stdout",
    )
    args = parser.parse_args(argv)

    scaling = scaling_probe(
        p_values=args.p,
        workload=args.workload,
        budget=args.budget,
        seed=args.seed,
        zones=not args.no_zones,
        verbose=not args.json,
    )
    if args.json:
        print(json.dumps(scaling, indent=2, sort_keys=True))
    if args.record:
        data = record_bench(args.record, {"scaling": scaling}, args.output)
        print(
            f"recorded '{args.record}' -> {args.output} "
            f"({len(data['entries'])} entries)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
