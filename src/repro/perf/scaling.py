"""Rank-count scaling probe: ``python -m repro.perf.scaling``.

Sweeps the simulator over a list of rank counts (default
``p ∈ {32, 128, 512, 2048}``) and records, per point, event-loop
throughput (msgs/s, events/s) plus a per-zone wall-time breakdown from a
second, profiled run of the identical workload.  This is the measurement
the ROADMAP's "vectorized sync kernel at p >= 4096" item needs: it shows
*which* engine zone stops scaling first as p grows, not just that the
wall time does.

Two workloads:

* ``ring`` — the :mod:`repro.perf.harness` nearest-neighbour ring with a
  fixed total message budget, so ``nrounds ≈ budget / p`` and every
  point moves a comparable number of messages;
* ``fig3`` — one flat HCA synchronization (the Fig. 3 workload family)
  over all p ranks, whose message count grows ~p·log p like the real
  algorithm.

Results go to the ``BENCH_engine.json`` trajectory via ``--record``:
one entry whose ``scaling`` section :mod:`repro.perf.regress` compares
per rank count against the best prior entry.

Each point records the engine's event-queue kind
(``event_queue``), and the regression gate keys on it: a calendar-queue
sweep never gates against a heap sweep.  ``--compare`` prints, per
``(workload, p)``, the speedup of the fresh sweep over the best prior
trajectory point.

CLI::

    python -m repro.perf.scaling [--p 32 128 512 2048 4096]
                                 [--workload ring] [--queue calendar]
                                 [--budget 25600] [--seed 0] [--no-zones]
                                 [--label hca/8/skampi_offset/4]
                                 [--depth] [--critical-path DIR]
                                 [--compare] [--record LABEL]
                                 [--output BENCH.json]

``--depth`` (fig3 workload) re-runs each point once under a causal span
recorder and records the sync round's measured critical-path depth vs
its structural bound (``sync_depth`` per point; see
:mod:`repro.obs.causal`) — the empirical log-p-vs-p depth separation of
tree and flat algorithms, straight from the traced DAG.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.cluster.netmodels import infiniband_qdr
from repro.perf.harness import (
    BENCH_FILE,
    _ring_main,
    load_bench,
    record_bench,
    ring_machine,
)
from repro.prof import Profiler, zone_breakdown
from repro.simmpi.eventq import QUEUE_KINDS
from repro.simmpi.simulation import Simulation

#: Rank counts swept by default — powers of 4 up to the p >= 4096 scale
#: the batched event kernel targets (ROADMAP item 1).
DEFAULT_P = (32, 128, 512, 2048, 4096)

#: Ring workload: total messages per point (``nrounds ≈ budget / p``).
DEFAULT_BUDGET = 25600

#: fig3 workload: the flat-HCA label synced once over all p ranks.  Small
#: fit-point/exchange counts keep the largest points tractable; the
#: *scaling* of the traffic pattern with p is what the probe measures.
FIG3_LABEL = "hca/8/skampi_offset/4"

RANKS_PER_NODE = 4


def _fig3_main(label: str = FIG3_LABEL):
    """SPMD body: one clock synchronization, no accuracy check."""
    from repro.sync.registry import algorithm_from_label

    algorithm = algorithm_from_label(label, fitpoint_spacing=1e-3)

    def main(ctx, comm):
        yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return ctx.now

    return main


def _check_p(p: int) -> None:
    if p < RANKS_PER_NODE or p % RANKS_PER_NODE:
        raise ValueError(
            f"p={p} must be a multiple of {RANKS_PER_NODE}"
        )


def _build(
    p: int, workload: str, budget: int, seed: int,
    event_queue: str = "calendar", label: str = FIG3_LABEL,
):
    """(simulation factory, SPMD body, params dict) for one sweep point."""
    _check_p(p)
    machine = ring_machine(p // RANKS_PER_NODE, RANKS_PER_NODE)

    def make_sim(profiler: Profiler | None = None) -> Simulation:
        return Simulation(
            machine=machine, network=infiniband_qdr(), seed=seed,
            profiler=profiler, event_queue=event_queue,
        )

    if workload == "ring":
        nrounds = max(4, budget // p)
        return make_sim, lambda: _ring_main(nrounds), {"nrounds": nrounds}
    if workload == "fig3":
        return make_sim, lambda: _fig3_main(label), {"label": label}
    raise ValueError(f"unknown workload {workload!r}")


def depth_probe(
    p: int,
    label: str = FIG3_LABEL,
    seed: int = 0,
    event_queue: str = "calendar",
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Trace one synchronization; measure its critical-path round depth.

    Re-runs the fig3 workload with a causal span recorder attached
    (which disables the engine's quiet fast path, so this stays separate
    from the unobserved timing run) and condenses the critical-path
    analysis to the per-point fields the benchmark trajectory keeps:
    measured level depth vs the algorithm's structural bound
    (``ceil(log2 p)``-shaped for tree algorithms, ``p - 1`` for flat
    ones).  Returns ``(summary, full_analysis)``; everything in the
    summary except ``wall_s`` is bit-deterministic.
    """
    from repro.obs.causal import analyze_recorder
    from repro.obs.spans import SpanRecorder

    _check_p(p)
    machine = ring_machine(p // RANKS_PER_NODE, RANKS_PER_NODE)
    recorder = SpanRecorder()
    sim = Simulation(
        machine=machine, network=infiniband_qdr(), seed=seed,
        sink=recorder, event_queue=event_queue,
    )
    t0 = time.perf_counter()
    sim.run(_fig3_main(label))
    wall = time.perf_counter() - t0
    analysis = analyze_recorder(recorder)[0]
    depth = analysis["depth"]
    cp = analysis["critical_path"]
    msg_s = sum(v for k, v in cp["by_kind_s"].items() if k != "compute")
    summary = {
        "p": p,
        "label": label,
        "level_depth": depth["level_depth"],
        "round_depth": depth["round_depth"],
        "expected_depth": depth["expected"],
        "depth_ratio": depth["ratio"],
        "duration_s": analysis["duration_s"],
        "path_msg_fraction": round(
            msg_s / cp["length_s"] if cp["length_s"] else 0.0, 12
        ),
        "wall_s": wall,
    }
    return summary, analysis


def probe_point(
    p: int,
    workload: str = "ring",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    zones: bool = True,
    event_queue: str = "calendar",
    label: str = FIG3_LABEL,
) -> dict[str, Any]:
    """Measure one rank count: throughput (unprofiled) + zone breakdown.

    The timing run is unprofiled; ``zones=True`` repeats the identical
    deterministic workload under a profiler so the breakdown costs the
    timing numbers nothing.  The point records ``event_queue`` so the
    regression gate never compares different kernel implementations.
    """
    make_sim, make_main, params = _build(
        p, workload, budget, seed, event_queue=event_queue, label=label
    )
    sim = make_sim()
    t0 = time.perf_counter()
    result = sim.run(make_main())
    wall = time.perf_counter() - t0
    stats = sim.engine.stats()
    point: dict[str, Any] = {
        "p": p,
        "workload": workload,
        "seed": seed,
        "event_queue": event_queue,
        **params,
        "wall_s": wall,
        "messages": result.messages,
        "msgs_per_sec": result.messages / wall if wall > 0 else 0.0,
        "events_processed": stats["events_processed"],
        "events_per_sec": (
            stats["events_processed"] / wall if wall > 0 else 0.0
        ),
        "max_queue_depth": stats["max_queue_depth"],
        "gate_deferrals": stats["gate_deferrals"],
    }
    if zones:
        profiler = Profiler()
        make_sim(profiler).run(make_main())
        point["zones"] = zone_breakdown(profiler)
    return point


def scaling_probe(
    p_values=DEFAULT_P,
    workload: str = "ring",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    zones: bool = True,
    verbose: bool = False,
    event_queue: str = "calendar",
    label: str = FIG3_LABEL,
    depth: bool = False,
    depth_analyses: list | None = None,
) -> dict[str, Any]:
    """Sweep ``p_values``; returns the entry's ``scaling`` section.

    With ``depth=True`` (fig3 workload only) every point also runs one
    traced synchronization through :func:`depth_probe` and records the
    measured critical-path depth in the point's ``sync_depth`` section;
    the full per-run analyses are appended to ``depth_analyses`` when a
    list is passed (for ``--critical-path`` artifact export).
    """
    points = []
    for p in p_values:
        point = probe_point(
            p, workload=workload, budget=budget, seed=seed, zones=zones,
            event_queue=event_queue, label=label,
        )
        if depth and workload == "fig3":
            summary, analysis = depth_probe(
                p, label=label, seed=seed, event_queue=event_queue
            )
            point["sync_depth"] = summary
            if depth_analyses is not None:
                depth_analyses.append(analysis)
        points.append(point)
        if verbose:
            print(
                f"p={p:5d}: {point['messages']:7d} msgs in "
                f"{point['wall_s']:6.2f}s -> "
                f"{point['msgs_per_sec']:10,.0f} msgs/s, "
                f"{point['events_per_sec']:10,.0f} events/s",
                flush=True,
            )
            sync_depth = point.get("sync_depth")
            if sync_depth:
                print(
                    f"         sync depth: {sync_depth['level_depth']} "
                    f"(bound {sync_depth['expected_depth']}, "
                    f"ratio {sync_depth['depth_ratio']:.2f}) over a "
                    f"{sync_depth['duration_s']:.4f}s round"
                )
            if zones:
                rows = sorted(
                    point["zones"]["zones"].items(),
                    key=lambda kv: -kv[1]["self_ns"],
                )
                for path, z in rows[:3]:
                    print(
                        f"         {path}: {z['self_ns'] / 1e6:.1f}ms self "
                        f"({z['count']}x)"
                    )
    section: dict[str, Any] = {
        "workload": workload,
        "budget": budget,
        "seed": seed,
        "event_queue": event_queue,
        "points": points,
    }
    if workload == "fig3":
        section["label"] = label
    return section


def compare_to_trajectory(
    scaling: dict[str, Any], path: str = BENCH_FILE
) -> list[dict[str, Any]]:
    """Speedup of a fresh sweep vs the best prior point per (workload, p).

    Scans every recorded ``scaling`` section in the trajectory at
    ``path`` and, for each point of ``scaling``, reports the best prior
    ``msgs_per_sec`` at the same workload and rank count (any budget or
    queue kind — this is a progress report, not the regression gate,
    which only ever compares identical configurations).  Points with no
    prior measurement report ``speedup: None``.
    """
    best: dict[tuple[str, int], dict[str, Any]] = {}
    for entry in load_bench(path).get("entries", []):
        section = entry.get("scaling", {})
        workload = section.get("workload", "ring")
        for pt in section.get("points", []):
            if not (pt.get("p") and pt.get("msgs_per_sec")):
                continue
            key = (workload, int(pt["p"]))
            prior = best.get(key)
            if prior is None or pt["msgs_per_sec"] > prior["msgs_per_sec"]:
                best[key] = {
                    "msgs_per_sec": pt["msgs_per_sec"],
                    "event_queue": pt.get("event_queue", "heap"),
                    "budget": section.get("budget"),
                    "label": entry.get("label"),
                    "recorded_at": entry.get("recorded_at"),
                }
    rows = []
    for pt in scaling["points"]:
        key = (scaling["workload"], int(pt["p"]))
        prior = best.get(key)
        rows.append({
            "p": int(pt["p"]),
            "workload": scaling["workload"],
            "msgs_per_sec": pt["msgs_per_sec"],
            "prior": prior,
            "speedup": (
                pt["msgs_per_sec"] / prior["msgs_per_sec"]
                if prior else None
            ),
        })
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.scaling",
        description="Sweep simulator throughput over rank counts.",
    )
    parser.add_argument(
        "--p", type=int, nargs="+", default=list(DEFAULT_P),
        metavar="P", help=f"rank counts to sweep (default: {DEFAULT_P})",
    )
    parser.add_argument(
        "--workload", choices=["ring", "fig3"], default="ring",
    )
    parser.add_argument(
        "--queue", choices=list(QUEUE_KINDS), default="calendar",
        help="event-queue kernel under test (default: calendar)",
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="ring workload: total messages per point "
             f"(default: {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--label", default=FIG3_LABEL,
        help="fig3 workload: sync-algorithm label to probe "
             f"(default: {FIG3_LABEL})",
    )
    parser.add_argument(
        "--depth", action="store_true",
        help="fig3 workload: additionally run one traced sync per point "
             "and record its critical-path round depth (sync_depth)",
    )
    parser.add_argument(
        "--critical-path", metavar="DIR",
        help="with --depth: write the traced runs' critical_path.json "
             "under DIR",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-zones", action="store_true",
        help="skip the profiled second run per point (halves runtime)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="print the sweep's speedup vs the best prior trajectory "
             "point per (workload, p)",
    )
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append the sweep to the benchmark trajectory under LABEL",
    )
    parser.add_argument(
        "--output", default=BENCH_FILE,
        help=f"trajectory file for --record (default: {BENCH_FILE})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the scaling section as JSON to stdout",
    )
    args = parser.parse_args(argv)

    if args.depth and args.workload != "fig3":
        print("--depth requires --workload fig3", file=sys.stderr)
        return 2
    depth_analyses: list = []
    scaling = scaling_probe(
        p_values=args.p,
        workload=args.workload,
        budget=args.budget,
        seed=args.seed,
        zones=not args.no_zones,
        verbose=not args.json,
        event_queue=args.queue,
        label=args.label,
        depth=args.depth,
        depth_analyses=depth_analyses,
    )
    if args.json:
        print(json.dumps(scaling, indent=2, sort_keys=True))
    if args.critical_path and depth_analyses:
        from repro.obs.causal import write_critical_path

        cp_path = write_critical_path(
            args.critical_path, depth_analyses,
            meta={"workload": args.workload, "label": args.label,
                  "p": list(args.p), "seed": args.seed},
        )
        print(f"critical_path.json: {cp_path}", file=sys.stderr)
    if args.compare:
        for row in compare_to_trajectory(scaling, args.output):
            prior = row["prior"]
            if prior is None:
                print(
                    f"compare: p={row['p']:5d}: "
                    f"{row['msgs_per_sec']:10,.0f} msgs/s "
                    "(no prior trajectory point)"
                )
            else:
                print(
                    f"compare: p={row['p']:5d}: "
                    f"{row['msgs_per_sec']:10,.0f} msgs/s vs best prior "
                    f"{prior['msgs_per_sec']:10,.0f} "
                    f"({prior['event_queue']}, {prior['recorded_at']}) "
                    f"-> {row['speedup']:.2f}x"
                )
    if args.record:
        data = record_bench(args.record, {"scaling": scaling}, args.output)
        print(
            f"recorded '{args.record}' -> {args.output} "
            f"({len(data['entries'])} entries)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
