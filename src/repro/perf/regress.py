"""Performance-regression gate over the ``BENCH_engine.json`` trajectory.

Per metric, compares the trajectory's **latest** entry carrying that
metric against the **best prior** one and fails when the latest has
regressed past it by more than the tolerance — the guard the ROADMAP's
"fast as the hardware allows" goal needs, generalized from a frozen
baseline/current pair to an append-only history.  Checks (each one
emitted only when at least two entries carry the data — entries may
legitimately miss optional sections, e.g. ``campaign_parallel`` on a
1-CPU runner, ``scaling`` from trees that predate the probe, or
engine/campaign numbers in a scaling-only entry):

* ``engine.msgs_per_sec`` — latest lower than the best (max) prior by
  > tolerance fails; gated per event-queue kernel (entries recorded
  before the engine grew selectable kernels ran the heap and keep the
  unsuffixed name; other kernels check as
  ``engine[q=<kind>].msgs_per_sec``);
* ``campaign.wall_s`` — latest higher than the best (min) prior by
  > tolerance fails, each side using its *fastest* recorded
  configuration (serial or parallel);
* ``service.queries_per_sec`` — clock-service serving throughput
  (``repro.perf.harness.service_benchmark``), latest lower than the
  best prior by > tolerance fails; entries without a ``service``
  section (every entry recorded before the service layer existed) are
  simply not part of this check;
* ``scaling[<workload>/<budget>,p=N].msgs_per_sec`` — one check per
  rank count recorded by ``python -m repro.perf.scaling``, latest vs
  best prior at the same workload, budget and ``p`` (sweeps of
  different configurations never compare).

CLI (for CI)::

    python -m repro.perf.regress [--file BENCH_engine.json]
                                 [--tolerance 0.15] [--soft-fail]

Exit codes: 0 all checks pass, 1 regression detected, 2 benchmark file
or comparable entries missing.  ``--soft-fail`` downgrades every failure
to a warning with exit 0 — for CI phases where the trajectory is still
accumulating or the runner's horsepower is not comparable.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any

from repro.perf.harness import BENCH_FILE, load_bench, upgrade_bench

#: Default allowed relative regression (0.15 == 15%).
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class RegressionCheck:
    """Outcome of one best-prior-vs-latest comparison."""

    name: str
    baseline: float
    current: float
    #: Relative regression, positive == worse (throughput drop fraction,
    #: or wall-time increase fraction).
    regression: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.regression <= self.tolerance

    def describe(self) -> str:
        direction = "drop" if self.name.endswith("_per_sec") else "rise"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name}: best prior {self.baseline:g} -> latest "
            f"{self.current:g} ({self.regression:+.1%} {direction}, "
            f"tolerance {self.tolerance:.0%}) {verdict}"
        )


def _campaign_wall(entry: dict[str, Any]) -> float | None:
    """Fastest recorded campaign configuration, serial or parallel."""
    walls = [
        entry[key]["wall_s"]
        for key in ("campaign", "campaign_parallel")
        if entry.get(key, {}).get("wall_s")
    ]
    return min(walls) if walls else None


def _scaling_rates(entry: dict[str, Any]) -> dict[str, float]:
    """``{key: msgs_per_sec}`` from a scaling section, if any.

    The key folds in workload, budget and the event-queue kernel, so
    only points measuring the same configuration ever compare (a CI
    sweep at a tiny budget must not gate against the full-size default
    sweep, and a calendar-queue sweep must not gate against a heap one).
    Points recorded before the engine grew selectable kernels default to
    ``heap`` — that is what those trees ran.
    """
    section = entry.get("scaling", {})
    workload = section.get("workload", "ring")
    budget = section.get("budget", 0)
    return {
        (
            f"{workload}/{budget},"
            f"q={pt.get('event_queue', section.get('event_queue', 'heap'))},"
            f"p={int(pt['p'])}"
        ): pt["msgs_per_sec"]
        for pt in section.get("points", [])
        if pt.get("p") and pt.get("msgs_per_sec")
    }


def check_bench(
    data: dict[str, Any], tolerance: float = DEFAULT_TOLERANCE
) -> list[RegressionCheck]:
    """All latest-vs-best-prior checks the trajectory's entries support.

    Each metric is gated independently over the entries that *carry* it:
    "latest" is the newest entry recording the metric and "best prior"
    the best among older ones, so an appended scaling-only entry neither
    loses the engine/campaign gate nor trips a missing-section error.
    Raises :class:`KeyError` when no metric appears in at least two
    entries — the caller distinguishes "no data" (exit 2) from "data
    says regression" (exit 1).
    """
    entries = upgrade_bench(data).get("entries", [])
    if len(entries) < 2:
        raise KeyError(
            f"need >= 2 trajectory entries to compare, have {len(entries)}"
        )
    checks: list[RegressionCheck] = []

    # Engine throughput is gated per event-queue kernel: a calendar-queue
    # entry never compares against a heap one (they are different
    # implementations, not the same code getting faster or slower).
    # Entries recorded before the engine grew selectable kernels ran the
    # heap, and keep the historical unsuffixed check name.
    engine_rates: dict[str, list[float]] = {}
    for e in entries:
        engine = e.get("engine", {})
        if engine.get("msgs_per_sec"):
            kind = engine.get("event_queue", "heap")
            engine_rates.setdefault(kind, []).append(
                engine["msgs_per_sec"]
            )
    for kind in sorted(engine_rates):
        rates = engine_rates[kind]
        if len(rates) < 2:
            continue
        b_rate = max(rates[:-1])
        checks.append(RegressionCheck(
            name=(
                "engine.msgs_per_sec" if kind == "heap"
                else f"engine[q={kind}].msgs_per_sec"
            ),
            baseline=b_rate,
            current=rates[-1],
            regression=1.0 - rates[-1] / b_rate,
            tolerance=tolerance,
        ))

    service_rates = [
        e["service"]["queries_per_sec"] for e in entries
        if e.get("service", {}).get("queries_per_sec")
    ]
    if len(service_rates) >= 2:
        b_rate = max(service_rates[:-1])
        checks.append(RegressionCheck(
            name="service.queries_per_sec",
            baseline=b_rate,
            current=service_rates[-1],
            regression=1.0 - service_rates[-1] / b_rate,
            tolerance=tolerance,
        ))

    walls = [
        w for w in (_campaign_wall(e) for e in entries) if w is not None
    ]
    if len(walls) >= 2:
        b_wall = min(walls[:-1])
        checks.append(RegressionCheck(
            name="campaign.wall_s",
            baseline=b_wall,
            current=walls[-1],
            regression=walls[-1] / b_wall - 1.0,
            tolerance=tolerance,
        ))

    by_key: dict[str, list[float]] = {}
    for entry in entries:
        for key, rate in _scaling_rates(entry).items():
            by_key.setdefault(key, []).append(rate)
    for key in sorted(by_key):
        series = by_key[key]
        if len(series) < 2:
            continue
        best = max(series[:-1])
        checks.append(RegressionCheck(
            name=f"scaling[{key}].msgs_per_sec",
            baseline=best,
            current=series[-1],
            regression=1.0 - series[-1] / best,
            tolerance=tolerance,
        ))
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.regress",
        description="Fail when BENCH_engine.json shows a perf regression.",
    )
    parser.add_argument(
        "--file", default=BENCH_FILE,
        help=f"benchmark file to check (default: {BENCH_FILE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative regression (default: 0.15 == 15%%)",
    )
    parser.add_argument(
        "--soft-fail", action="store_true",
        help="report failures but always exit 0 (trajectory bootstrap "
             "mode)",
    )
    args = parser.parse_args(argv)

    data = load_bench(args.file)
    try:
        checks = check_bench(data, tolerance=args.tolerance)
    except KeyError as exc:
        print(f"perf.regress: cannot compare — {exc.args[0]}")
        return 0 if args.soft_fail else 2
    if not checks:
        print("perf.regress: entries present but no comparable metrics")
        return 0 if args.soft_fail else 2

    failed = [c for c in checks if not c.ok]
    for check in checks:
        print(f"perf.regress: {check.describe()}")
    if failed:
        print(
            f"perf.regress: {len(failed)}/{len(checks)} checks regressed"
            + (" (soft-fail: ignoring)" if args.soft_fail else "")
        )
        return 0 if args.soft_fail else 1
    print(f"perf.regress: all {len(checks)} checks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
