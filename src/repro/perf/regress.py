"""Performance-regression gate over ``BENCH_engine.json``.

Compares the ``current`` entry against the committed ``baseline`` and
fails when current throughput has *regressed past baseline* by more than
the tolerance — the guard the ROADMAP's "fast as the hardware allows"
goal needs now that the benchmark file exists.  Two checks:

* ``engine.msgs_per_sec`` — lower than baseline by > tolerance fails;
* ``campaign.wall_s`` — higher than baseline by > tolerance fails, using
  the *fastest* recorded current configuration (serial or parallel),
  mirroring :func:`repro.perf.harness.speedup`.

CLI (for CI)::

    python -m repro.perf.regress [--file BENCH_engine.json]
                                 [--tolerance 0.15] [--soft-fail]

Exit codes: 0 all checks pass, 1 regression detected, 2 benchmark file
or entries missing.  ``--soft-fail`` downgrades every failure to a
warning with exit 0 — for CI phases where baselines are still
accumulating or the runner's horsepower is not comparable.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any

from repro.perf.harness import BENCH_FILE, load_bench

#: Default allowed relative regression (0.15 == 15%).
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class RegressionCheck:
    """Outcome of one baseline-vs-current comparison."""

    name: str
    baseline: float
    current: float
    #: Relative regression, positive == worse (throughput drop fraction,
    #: or wall-time increase fraction).
    regression: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.regression <= self.tolerance

    def describe(self) -> str:
        direction = "drop" if self.name.endswith("msgs_per_sec") else "rise"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name}: baseline {self.baseline:g} -> current "
            f"{self.current:g} ({self.regression:+.1%} {direction}, "
            f"tolerance {self.tolerance:.0%}) {verdict}"
        )


def check_bench(
    data: dict[str, Any], tolerance: float = DEFAULT_TOLERANCE
) -> list[RegressionCheck]:
    """All baseline-vs-current checks the file's entries support.

    Raises :class:`KeyError` when the ``baseline`` or ``current`` entry
    is missing entirely — the caller distinguishes "no data" (exit 2)
    from "data says regression" (exit 1).
    """
    entries = data.get("entries", {})
    base, cur = entries.get("baseline"), entries.get("current")
    if not base or not cur:
        missing = [
            label for label, entry in (("baseline", base), ("current", cur))
            if not entry
        ]
        raise KeyError(f"missing entries: {', '.join(missing)}")

    checks: list[RegressionCheck] = []
    b_rate = base.get("engine", {}).get("msgs_per_sec")
    c_rate = cur.get("engine", {}).get("msgs_per_sec")
    if b_rate and c_rate:
        checks.append(RegressionCheck(
            name="engine.msgs_per_sec",
            baseline=b_rate,
            current=c_rate,
            regression=1.0 - c_rate / b_rate,
            tolerance=tolerance,
        ))

    b_wall = base.get("campaign", {}).get("wall_s")
    cur_walls = [
        cur[key]["wall_s"]
        for key in ("campaign", "campaign_parallel")
        if cur.get(key, {}).get("wall_s")
    ]
    if b_wall and cur_walls:
        c_wall = min(cur_walls)
        checks.append(RegressionCheck(
            name="campaign.wall_s",
            baseline=b_wall,
            current=c_wall,
            regression=c_wall / b_wall - 1.0,
            tolerance=tolerance,
        ))
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.regress",
        description="Fail when BENCH_engine.json shows a perf regression.",
    )
    parser.add_argument(
        "--file", default=BENCH_FILE,
        help=f"benchmark file to check (default: {BENCH_FILE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative regression (default: 0.15 == 15%%)",
    )
    parser.add_argument(
        "--soft-fail", action="store_true",
        help="report failures but always exit 0 (baseline bootstrap mode)",
    )
    args = parser.parse_args(argv)

    data = load_bench(args.file)
    try:
        checks = check_bench(data, tolerance=args.tolerance)
    except KeyError as exc:
        print(f"perf.regress: cannot compare — {exc.args[0]}")
        return 0 if args.soft_fail else 2
    if not checks:
        print("perf.regress: entries present but no comparable metrics")
        return 0 if args.soft_fail else 2

    failed = [c for c in checks if not c.ok]
    for check in checks:
        print(f"perf.regress: {check.describe()}")
    if failed:
        print(
            f"perf.regress: {len(failed)}/{len(checks)} checks regressed"
            + (" (soft-fail: ignoring)" if args.soft_fail else "")
        )
        return 0 if args.soft_fail else 1
    print(f"perf.regress: all {len(checks)} checks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
