"""Micro-benchmarks for the simulation engine and campaign executor.

Two workloads, both deterministic per seed:

* :func:`engine_benchmark` — a single simulated job that hammers the
  engine's hot path (point-to-point sendrecv ring with mixed message
  sizes, periodic barriers, one closing allreduce) and reports event-loop
  throughput in messages/second.  With ``zones=True`` a second, profiled
  run of the same workload attaches a per-zone wall-time breakdown
  (:func:`repro.prof.zone_breakdown`) so trajectory entries record *where*
  the time went, not just how much.
* :func:`campaign_benchmark` — wall-clock time of the Fig. 3 accuracy
  campaign at quick scale, serial or with the parallel executor.

Results accumulate in ``BENCH_engine.json`` at the repo root — an
**append-only trajectory** (format 2): every :func:`record_bench` call
appends one entry stamped with ``recorded_at``, interpreter, CPU count
and ``git describe``, so the file records the repo's performance history
instead of a single baseline/current pair.  Legacy format-1 files (a
``baseline``/``current`` dict) are upgraded transparently on load.
``benchmarks/bench_engine_perf.py`` is the CLI front end (with an inline
fallback so the same workload also runs against pre-optimization trees);
:mod:`repro.perf.regress` gates the latest entry against the best prior
one.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any

from repro.cluster.netmodels import infiniband_qdr
from repro.cluster.topology import Machine
from repro.simmpi.simulation import Simulation

#: Default file name, resolved relative to the current directory unless
#: an absolute path is given to :func:`record_bench`/:func:`load_bench`.
BENCH_FILE = "BENCH_engine.json"

#: Current trajectory format version (``entries`` is an append-only list).
BENCH_FORMAT = 2

#: Message sizes cycled through by the ring workload (bytes): the small
#: sizes the sync algorithms use plus a couple of bandwidth-bound ones.
RING_SIZES = (8, 64, 8, 1024, 8, 65536)


def _ring_main(nrounds: int):
    """SPMD body: nearest-neighbour ring exchange + periodic barriers."""

    def main(ctx, comm):
        n = ctx.nprocs
        right = (ctx.rank + 1) % n
        left = (ctx.rank - 1) % n
        for r in range(nrounds):
            size = RING_SIZES[r % len(RING_SIZES)]
            yield from comm.sendrecv(
                dest=right, send_tag=r, size=size, source=left
            )
            if r % 64 == 63:
                yield from comm.barrier()
        total = yield from comm.allreduce(ctx.rank)
        return total

    return main


def ring_machine(num_nodes: int = 8, ranks_per_node: int = 4) -> Machine:
    """The ring workload's machine (shared with ``repro.perf.scaling``)."""
    return Machine(
        num_nodes=num_nodes,
        sockets_per_node=1,
        cores_per_socket=ranks_per_node,
        ranks_per_node=ranks_per_node,
        name="perfbox",
    )


def engine_benchmark(
    num_nodes: int = 8,
    ranks_per_node: int = 4,
    nrounds: int = 400,
    seed: int = 0,
    zones: bool = False,
    repeats: int = 1,
    event_queue: str = "calendar",
    delay_mode: str = "scalar",
) -> dict[str, Any]:
    """Time one message-heavy job; return throughput figures.

    The returned dict carries ``wall_s``, ``messages``, ``msgs_per_sec``
    and the workload parameters so entries recorded by different trees
    are comparable.  ``repeats`` re-runs the workload and keeps the
    *fastest* wall time (min-timing): the simulation is deterministic,
    so slower samples only measure host interference, not the engine.
    ``zones=True`` re-runs the identical workload under a
    :class:`~repro.prof.Profiler` and attaches the per-zone breakdown
    under ``"zones"`` — a *separate* run, so the throughput numbers stay
    unprofiled.  ``event_queue``/``delay_mode`` select the engine kernel
    under test and are recorded in the entry, so the regression gate can
    refuse to compare different kernels.
    """
    machine = ring_machine(num_nodes, ranks_per_node)
    main = _ring_main(nrounds)
    wall = None
    result = None
    for _ in range(max(1, repeats)):
        sim = Simulation(
            machine=machine, network=infiniband_qdr(), seed=seed,
            event_queue=event_queue, delay_mode=delay_mode,
        )
        t0 = time.perf_counter()
        result = sim.run(main)
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    entry = {
        "workload": "ring",
        "num_nodes": num_nodes,
        "ranks_per_node": ranks_per_node,
        "nrounds": nrounds,
        "seed": seed,
        "repeats": max(1, repeats),
        "event_queue": event_queue,
        "delay_mode": delay_mode,
        "wall_s": wall,
        "messages": result.messages,
        "msgs_per_sec": result.messages / wall if wall > 0 else 0.0,
    }
    if zones:
        from repro.prof import Profiler, zone_breakdown

        profiler = Profiler()
        profiled_sim = Simulation(
            machine=machine, network=infiniband_qdr(), seed=seed,
            profiler=profiler,
            event_queue=event_queue, delay_mode=delay_mode,
        )
        profiled_sim.run(_ring_main(nrounds))
        entry["zones"] = zone_breakdown(profiler)
    return entry


def service_benchmark(
    scale: str = "quick", seed: int = 0, repeats: int = 1
) -> dict[str, Any]:
    """Serving throughput of the clock service (queries per wall second).

    One deterministic open-loop run of the ``service_slo`` workload under
    a periodic resync policy — the service's batched hot path without
    the sweep around it.  Like :func:`engine_benchmark`, ``repeats``
    keeps the fastest wall time (the simulated run is identical every
    time, so slower samples only measure host interference).
    """
    from repro.service import (
        PeriodicResyncPolicy,
        ServiceConfig,
        WorkloadSpec,
        run_service,
    )

    workload = WorkloadSpec(
        mode="open",
        duration=50.0 if scale == "quick" else 120.0,
        rate=6000.0 if scale == "quick" else 20_000.0,
    )
    config = ServiceConfig(num_ranks=8 if scale == "quick" else 16)
    result = None
    for _ in range(max(1, repeats)):
        candidate = run_service(
            PeriodicResyncPolicy(8.0), workload, config, seed=seed
        )
        if result is None or candidate.wall_s < result.wall_s:
            result = candidate
    return {
        "workload": "service_slo",
        "scale": scale,
        "seed": seed,
        "repeats": max(1, repeats),
        "num_ranks": config.num_ranks,
        "queries": result.queries,
        "syncs": result.syncs,
        "wall_s": result.wall_s,
        "queries_per_sec": (
            result.queries / result.wall_s if result.wall_s > 0 else 0.0
        ),
    }


def campaign_benchmark(
    scale: str = "quick", jobs: int | None = 1, seed: int = 0
) -> dict[str, Any]:
    """Wall-clock time of the Fig. 3 campaign (the perf acceptance run)."""
    from repro.experiments import fig3_flat_algorithms

    t0 = time.perf_counter()
    result = fig3_flat_algorithms.run(scale=scale, seed=seed, jobs=jobs)
    wall = time.perf_counter() - t0
    return {
        "workload": "fig3_campaign",
        "scale": scale,
        "jobs": jobs,
        "seed": seed,
        "wall_s": wall,
        "nruns": len(result.runs),
    }


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the tree, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def upgrade_bench(data: dict[str, Any]) -> dict[str, Any]:
    """Normalize a benchmark document to the format-2 trajectory.

    Format 1 kept ``entries`` as a ``{label: entry}`` dict (typically
    ``baseline`` and ``current``); the trajectory keeps an append-only
    *list* ordered oldest-first.  Upgrading folds the label into each
    entry and orders by ``recorded_at`` (with ``baseline`` winning ties,
    since it was by construction recorded from the older tree).
    """
    entries = data.get("entries")
    if isinstance(entries, list):
        data.setdefault("format", BENCH_FORMAT)
        return data
    upgraded = []
    for label, entry in (entries or {}).items():
        entry = dict(entry)
        entry["label"] = label
        upgraded.append(entry)
    upgraded.sort(key=lambda e: (
        e.get("recorded_at", ""), e.get("label") != "baseline"
    ))
    return {
        "benchmark": data.get("benchmark", "engine_perf"),
        "format": BENCH_FORMAT,
        "entries": upgraded,
    }


def load_bench(path: str = BENCH_FILE) -> dict[str, Any]:
    """Read the benchmark trajectory; empty skeleton if it does not exist.

    Legacy format-1 files are upgraded in memory (see
    :func:`upgrade_bench`); the file itself is rewritten only by the next
    :func:`record_bench`.
    """
    if not os.path.exists(path):
        return {
            "benchmark": "engine_perf",
            "format": BENCH_FORMAT,
            "entries": [],
        }
    with open(path) as fh:
        return upgrade_bench(json.load(fh))


def record_bench(
    label: str, entry: dict[str, Any], path: str = BENCH_FILE
) -> dict[str, Any]:
    """Append ``entry`` to the trajectory under ``label``.

    Prior entries are never overwritten — re-recording the same label
    appends a new point, which is what lets the regression gate compare
    "latest" against "best prior" instead of a single frozen baseline.
    Each entry is stamped with ``recorded_at``, interpreter version, CPU
    count and ``git describe`` (when available).
    """
    data = load_bench(path)
    entry = dict(entry)
    entry["label"] = label
    entry.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
    entry.setdefault("python", platform.python_version())
    entry.setdefault("cpus", os.cpu_count())
    describe = git_describe()
    if describe is not None:
        entry.setdefault("git", describe)
    data["entries"].append(entry)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def speedup(data: dict[str, Any], metric: str = "engine") -> float | None:
    """Latest-over-earliest improvement for one metric along the trajectory.

    ``metric="engine"`` compares msgs/sec (higher is better);
    ``metric="campaign"`` compares wall seconds (lower is better), using
    the *fastest* recorded configuration of the latest entry — serial or
    parallel — because on a single-CPU host the parallel path cannot beat
    serial.  Returns ``None`` when fewer than two entries carry the
    metric.
    """
    entries = upgrade_bench(data).get("entries", [])
    if metric == "engine":
        rates = [
            e["engine"]["msgs_per_sec"] for e in entries
            if e.get("engine", {}).get("msgs_per_sec")
        ]
        return rates[-1] / rates[0] if len(rates) >= 2 else None
    walls = [
        min(
            e[key]["wall_s"]
            for key in ("campaign", "campaign_parallel")
            if e.get(key, {}).get("wall_s")
        )
        for e in entries
        if any(
            e.get(key, {}).get("wall_s")
            for key in ("campaign", "campaign_parallel")
        )
    ]
    return walls[0] / walls[-1] if len(walls) >= 2 else None
