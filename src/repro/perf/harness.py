"""Micro-benchmarks for the simulation engine and campaign executor.

Two workloads, both deterministic per seed:

* :func:`engine_benchmark` — a single simulated job that hammers the
  engine's hot path (point-to-point sendrecv ring with mixed message
  sizes, periodic barriers, one closing allreduce) and reports event-loop
  throughput in messages/second.
* :func:`campaign_benchmark` — wall-clock time of the Fig. 3 accuracy
  campaign at quick scale, serial or with the parallel executor.

Results are recorded to ``BENCH_engine.json`` at the repo root via
:func:`record_bench`; ``benchmarks/bench_engine_perf.py`` is the CLI
front end (with an inline fallback so the same workload also runs
against the pre-optimization tree for a baseline entry).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any

from repro.cluster.netmodels import infiniband_qdr
from repro.cluster.topology import Machine
from repro.simmpi.simulation import Simulation

#: Default file name, resolved relative to the current directory unless
#: an absolute path is given to :func:`record_bench`/:func:`load_bench`.
BENCH_FILE = "BENCH_engine.json"

#: Message sizes cycled through by the ring workload (bytes): the small
#: sizes the sync algorithms use plus a couple of bandwidth-bound ones.
RING_SIZES = (8, 64, 8, 1024, 8, 65536)


def _ring_main(nrounds: int):
    """SPMD body: nearest-neighbour ring exchange + periodic barriers."""

    def main(ctx, comm):
        n = ctx.nprocs
        right = (ctx.rank + 1) % n
        left = (ctx.rank - 1) % n
        for r in range(nrounds):
            size = RING_SIZES[r % len(RING_SIZES)]
            yield from comm.sendrecv(
                dest=right, send_tag=r, size=size, source=left
            )
            if r % 64 == 63:
                yield from comm.barrier()
        total = yield from comm.allreduce(ctx.rank)
        return total

    return main


def engine_benchmark(
    num_nodes: int = 8,
    ranks_per_node: int = 4,
    nrounds: int = 400,
    seed: int = 0,
) -> dict[str, Any]:
    """Time one message-heavy job; return throughput figures.

    The returned dict carries ``wall_s``, ``messages``, ``msgs_per_sec``
    and the workload parameters so entries recorded by different trees
    are comparable.
    """
    machine = Machine(
        num_nodes=num_nodes,
        sockets_per_node=1,
        cores_per_socket=ranks_per_node,
        ranks_per_node=ranks_per_node,
        name="perfbox",
    )
    sim = Simulation(
        machine=machine, network=infiniband_qdr(), seed=seed
    )
    main = _ring_main(nrounds)
    t0 = time.perf_counter()
    result = sim.run(main)
    wall = time.perf_counter() - t0
    return {
        "workload": "ring",
        "num_nodes": num_nodes,
        "ranks_per_node": ranks_per_node,
        "nrounds": nrounds,
        "seed": seed,
        "wall_s": wall,
        "messages": result.messages,
        "msgs_per_sec": result.messages / wall if wall > 0 else 0.0,
    }


def campaign_benchmark(
    scale: str = "quick", jobs: int | None = 1, seed: int = 0
) -> dict[str, Any]:
    """Wall-clock time of the Fig. 3 campaign (the perf acceptance run)."""
    from repro.experiments import fig3_flat_algorithms

    t0 = time.perf_counter()
    result = fig3_flat_algorithms.run(scale=scale, seed=seed, jobs=jobs)
    wall = time.perf_counter() - t0
    return {
        "workload": "fig3_campaign",
        "scale": scale,
        "jobs": jobs,
        "seed": seed,
        "wall_s": wall,
        "nruns": len(result.runs),
    }


def load_bench(path: str = BENCH_FILE) -> dict[str, Any]:
    """Read the benchmark file; empty skeleton if it does not exist."""
    if not os.path.exists(path):
        return {"benchmark": "engine_perf", "entries": {}}
    with open(path) as fh:
        return json.load(fh)


def record_bench(
    label: str, entry: dict[str, Any], path: str = BENCH_FILE
) -> dict[str, Any]:
    """Merge ``entry`` under ``label`` into the benchmark file.

    Existing entries under other labels are preserved, so a ``baseline``
    recorded from the pre-optimization tree survives ``current`` updates.
    """
    data = load_bench(path)
    entry = dict(entry)
    entry.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
    entry.setdefault("python", platform.python_version())
    entry.setdefault("cpus", os.cpu_count())
    data["entries"][label] = entry
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def speedup(data: dict[str, Any], metric: str = "engine") -> float | None:
    """``current`` over ``baseline`` improvement for one metric.

    ``metric="engine"`` compares msgs/sec (higher is better);
    ``metric="campaign"`` compares wall seconds (lower is better), using
    the *fastest* recorded current configuration — serial or parallel —
    because on a single-CPU host the parallel path cannot beat serial.
    Returns ``None`` when either entry is missing.
    """
    entries = data.get("entries", {})
    base, cur = entries.get("baseline"), entries.get("current")
    if not base or not cur:
        return None
    if metric == "engine":
        b = base.get("engine", {}).get("msgs_per_sec")
        c = cur.get("engine", {}).get("msgs_per_sec")
        return c / b if b and c else None
    b = base.get("campaign", {}).get("wall_s")
    walls = [
        cur[key]["wall_s"]
        for key in ("campaign", "campaign_parallel")
        if cur.get(key, {}).get("wall_s")
    ]
    return b / min(walls) if b and walls else None
