"""Run one scenario × algorithm cell and score the degradation.

A *cell* pairs one :class:`~repro.scenarios.scenario.Scenario` with one
algorithm label (JK/HCA/HCA2/HCA3/hierarchical/ClockPropSync) on a small
machine.  Each cell runs ``rounds`` simulated mpiruns twice — once clean
(baseline) and once under the scenario, from identical seed streams — so
the adversary's damage is the only difference.  Per round the harness
synchronizes, runs the paper's accuracy check, and scores both the
*measured* max offset (what honest ranks believe, which byzantine lies
poison) and the *ground-truth* max error (what the oracle clocks say,
which lies cannot hide).

Churn adversaries reshape the machine between rounds (each round is one
``mpirun``); every other adversary acts inside the run through
:class:`~repro.scenarios.apply.AdversaryInjector`.

Everything is reconstructed from primitive picklable arguments so cells
fan out over :mod:`repro.parallel` workers bit-identically.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.accuracy import (
    check_clock_accuracy,
    ground_truth_accuracy,
    max_abs_offset,
)
from repro.cluster.machines import MACHINES
from repro.obs.timeseries import get_default_timeseries
from repro.parallel import seed_int
from repro.scenarios.apply import AdversaryInjector
from repro.scenarios.scenario import Scenario
from repro.simmpi.simulation import Simulation
from repro.sync.offset import SKaMPIOffset
from repro.sync.registry import algorithm_from_label

#: Grid points of the per-round clock-error telemetry trajectory.
_ERROR_GRID_POINTS = 15

#: Ratio floor: degradation is adversarial/max(baseline, this).
_RATIO_FLOOR = 1e-9


@dataclass
class RoundResult:
    """One simulated mpirun of a cell (baseline or adversarial)."""

    num_nodes: int
    num_ranks: int
    duration: float
    #: wait_time -> measured max |offset| across checked clients.
    max_offsets: dict[float, float] = field(default_factory=dict)
    #: Oracle max |global_i - global_0| right after the check window.
    ground_truth_error: float = 0.0

    def worst_offset(self) -> float:
        return max(self.max_offsets.values()) if self.max_offsets else 0.0

    def to_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "num_ranks": self.num_ranks,
            "duration": self.duration,
            "max_offsets": {
                f"{wait:g}": offset
                for wait, offset in sorted(self.max_offsets.items())
            },
            "ground_truth_error": self.ground_truth_error,
        }


@dataclass
class CellResult:
    """Outcome of one scenario × algorithm cell."""

    scenario: str
    label: str
    seed: int
    error_budget: float
    baseline: list[RoundResult] = field(default_factory=list)
    adversarial: list[RoundResult] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def baseline_max_offset(self) -> float:
        return max((r.worst_offset() for r in self.baseline), default=0.0)

    @property
    def adversarial_max_offset(self) -> float:
        return max(
            (r.worst_offset() for r in self.adversarial), default=0.0
        )

    @property
    def ground_truth_error(self) -> float:
        return max(
            (r.ground_truth_error for r in self.adversarial), default=0.0
        )

    @property
    def degradation(self) -> float:
        """Adversarial / baseline measured max offset (≥ floor)."""
        return self.adversarial_max_offset / max(
            self.baseline_max_offset, _RATIO_FLOOR
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "label": self.label,
            "seed": self.seed,
            "error_budget": self.error_budget,
            "baseline": [r.to_dict() for r in self.baseline],
            "adversarial": [r.to_dict() for r in self.adversarial],
            "baseline_max_offset": self.baseline_max_offset,
            "adversarial_max_offset": self.adversarial_max_offset,
            "ground_truth_error": self.ground_truth_error,
            "degradation": self.degradation,
            "violations": list(self.violations),
        }


def _sample_round_telemetry(bank, values, duration, wait_times) -> None:
    """Per-rank clock.error grid over the accuracy-check window."""
    for rank, value in enumerate(values):
        bank.sample("sync.duration", value[0], value[0], rank=rank)
    clocks = [value[2] for value in values]
    span = max(wait_times) if wait_times else 0.0
    horizon = duration + (span if span > 0.0 else 1.0)
    grid = [
        duration + (horizon - duration) * i / (_ERROR_GRID_POINTS - 1)
        for i in range(_ERROR_GRID_POINTS)
    ]
    ts = np.asarray(grid, dtype=np.float64)
    ref_reads = clocks[0].read_many(ts)
    errors = [clk.read_many(ts) - ref_reads for clk in clocks[1:]]
    for i, t in enumerate(grid):
        for rank, err in enumerate(errors, start=1):
            bank.sample("clock.error", t, float(err[i]), rank=rank)


def _run_one(
    scenario: Scenario | None,
    label: str,
    spec,
    num_nodes: int,
    ranks_per_node: int,
    nexchanges: int,
    fitpoint_spacing: float,
    wait_times: tuple[float, ...],
    run_seed: int,
    check: str | None,
    scope: str,
) -> RoundResult:
    """One simulated mpirun; adversarial when ``scenario`` is given.

    ``run_seed`` is a plain integer so the baseline and adversarial
    twins of a round can each build a *fresh* SeedSequence from it —
    sharing one sequence object would let the first run's child spawns
    shift the second run's streams.
    """
    machine = spec.machine(num_nodes, ranks_per_node)
    algorithm = algorithm_from_label(
        label, fitpoint_spacing=fitpoint_spacing
    )
    check_offset_alg = SKaMPIOffset(nexchanges=nexchanges)
    seedseq = np.random.SeedSequence(run_seed)
    sample_seed = seed_int(seedseq)
    bank = get_default_timeseries()

    def main(ctx, comm):
        t0 = ctx.now
        global_clock = yield from algorithm.sync_clocks(
            comm, ctx.hardware_clock
        )
        duration = ctx.now - t0
        offsets = yield from check_clock_accuracy(
            comm,
            global_clock,
            check_offset_alg,
            wait_times=wait_times,
            sample_seed=sample_seed,
        )
        return (duration, offsets, global_clock)

    kwargs = {}
    if scenario is not None:
        kwargs["faults"] = scenario.faults
        kwargs["injector"] = AdversaryInjector(
            scenario, machine=machine, timeseries=bank
        )
    with bank.scoped(scope) if bank is not None else nullcontext():
        sim = Simulation(
            machine=machine,
            network=spec.network(),
            seed=seedseq,
            fabric=spec.fabric(machine.num_nodes),
            check=check,
            **kwargs,
        )
        values = sim.run(main).values
        duration = max(v[0] for v in values)
        offsets_by_wait = values[0][1]
        span = max(wait_times) if wait_times else 0.0
        truth = ground_truth_accuracy(
            [v[2] for v in values], duration + span
        )
        if bank is not None:
            _sample_round_telemetry(bank, values, duration, wait_times)
    return RoundResult(
        num_nodes=machine.num_nodes,
        num_ranks=machine.num_ranks,
        duration=duration,
        max_offsets={
            wait: max_abs_offset(per_client)
            for wait, per_client in offsets_by_wait.items()
        },
        ground_truth_error=truth,
    )


def run_scenario_cell(
    scenario: Scenario | dict,
    label: str,
    *,
    spec_name: str = "jupiter",
    num_nodes: int = 4,
    ranks_per_node: int = 2,
    nexchanges: int = 4,
    fitpoint_spacing: float = 2e-3,
    rounds: int = 2,
    wait_times: tuple[float, ...] = (0.0,),
    seed: int = 0,
    check: str | None = None,
    include_baseline: bool = True,
) -> CellResult:
    """Run one scenario × algorithm cell; returns the scored result.

    ``seed`` spawns one child stream per round; baseline and adversarial
    twins of a round start from the *same* child, so the adversary is
    the only difference between them.  Violations recorded on the
    result: non-finite measurements and error-budget breaches (both
    measured and ground-truth) — the fuzzer treats any entry as a
    failing cell.
    """
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    spec = MACHINES[spec_name]
    # Validate once against the *base* shape the scenario was authored
    # for; churned rounds run smaller machines, where adversaries keyed
    # to departed ranks/links simply stop matching.
    scenario.validate(
        num_ranks=num_nodes * ranks_per_node, num_nodes=num_nodes
    )
    churn = scenario.churn
    round_seeds = [
        seed_int(child)
        for child in np.random.SeedSequence(seed).spawn(rounds)
    ]
    cell = CellResult(
        scenario=scenario.name,
        label=label,
        seed=seed,
        error_budget=scenario.error_budget,
    )
    for round_idx in range(rounds):
        nodes = num_nodes
        for adv in churn:
            nodes = min(nodes, adv.nodes_at(round_idx, num_nodes))
        if include_baseline:
            cell.baseline.append(_run_one(
                None, label, spec, num_nodes, ranks_per_node,
                nexchanges, fitpoint_spacing, wait_times,
                round_seeds[round_idx], check,
                scope=f"{scenario.name}/{label}/base#r{round_idx}",
            ))
        cell.adversarial.append(_run_one(
            scenario, label, spec, nodes, ranks_per_node,
            nexchanges, fitpoint_spacing, wait_times,
            round_seeds[round_idx], check,
            scope=f"{scenario.name}/{label}/adv#r{round_idx}",
        ))
    _score(cell)
    return cell


def _score(cell: CellResult) -> None:
    """Record error-budget and sanity violations on the cell."""
    for phase, rounds in (
        ("baseline", cell.baseline),
        ("adversarial", cell.adversarial),
    ):
        for r in rounds:
            finite = (
                math.isfinite(r.duration)
                and math.isfinite(r.ground_truth_error)
                and all(math.isfinite(v) for v in r.max_offsets.values())
            )
            if not finite:
                cell.violations.append(f"nonfinite:{phase}")
    measured = cell.adversarial_max_offset
    if measured > cell.error_budget:
        cell.violations.append(
            f"error_budget:measured={measured:.6g}"
            f">{cell.error_budget:.6g}"
        )
    truth = cell.ground_truth_error
    if truth > cell.error_budget:
        cell.violations.append(
            f"error_budget:ground_truth={truth:.6g}"
            f">{cell.error_budget:.6g}"
        )
