"""Hypothesis strategies over the adversarial scenario space.

Shared by the standing fuzzer (:mod:`repro.scenarios.fuzz`) and the
property suite (``tests/properties``) — one source of truth for what "a
random scenario" means, so a fuzzer repro shrunk by Hypothesis is drawn
from exactly the distribution the properties pin down.

Every strategy produces *valid* inputs for the job shape it is given
(the registry's own validation has unit tests); parameter magnitudes
come from small sampled pools so shrinking converges on readable
minimal examples.  ``hostile=True`` cranks the magnitudes and shrinks
the error budget — the mode CI smoke runs use to guarantee the
violation-archiving path is exercised deterministically.

This module imports :mod:`hypothesis` at the top level on purpose;
``repro.scenarios`` itself does not re-export it, so the registry stays
importable without Hypothesis installed.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.faults.model import LinkFault
from repro.faults.schedule import FaultSchedule
from repro.scenarios.adversaries import (
    ByzantineClockAdversary,
    ChurnAdversary,
    CongestionAdversary,
    DelayAttackAdversary,
    RegionTopologyAdversary,
)
from repro.scenarios.scenario import Scenario

#: Valid labels spanning all six algorithm families the fuzzer targets
#: (JK, HCA, HCA2, HCA3, hierarchical HCA, ClockPropagation).
CELL_LABELS = (
    "jk/4/skampi_offset/4",
    "jk/4/mean_rtt_offset/4",
    "hca/4/skampi_offset/4",
    "hca2/4/skampi_offset/4",
    "hca3/recompute_intercept/4/skampi_offset/4",
    "Top/hca3/4/skampi_offset/4/Bottom/ClockPropagation",
)

labels = st.sampled_from(CELL_LABELS)


def _ranks(num_ranks: int):
    """Non-reference ranks (rank 0 anchors every offset table)."""
    return st.integers(min_value=1, max_value=max(1, num_ranks - 1))


@st.composite
def links(draw, num_ranks: int):
    """One valid directed link (src, dst) with src != dst."""
    src = draw(st.integers(min_value=0, max_value=num_ranks - 1))
    dst = draw(
        st.integers(min_value=0, max_value=num_ranks - 2).map(
            lambda d: d if d < src else d + 1
        )
    )
    return (src, dst)


@st.composite
def byzantine_adversaries(draw, num_ranks: int, hostile: bool = False):
    scale = 50.0 if hostile else 1.0
    return ByzantineClockAdversary(
        ranks=(draw(_ranks(num_ranks)),),
        bias=scale * draw(st.sampled_from([-200e-6, 50e-6, 200e-6])),
        noise=scale * draw(st.sampled_from([0.0, 10e-6])),
    )


@st.composite
def delay_attack_adversaries(draw, num_ranks: int, hostile: bool = False):
    scale = 50.0 if hostile else 1.0
    return DelayAttackAdversary(
        links=(draw(links(num_ranks)),),
        extra_delay=scale * draw(st.sampled_from([20e-6, 100e-6])),
        factor=draw(st.sampled_from([1.0, 2.0])),
        jitter=scale * draw(st.sampled_from([0.0, 10e-6])),
    )


@st.composite
def congestion_adversaries(draw, num_ranks: int, hostile: bool = False):
    scale = 20.0 if hostile else 1.0
    if draw(st.booleans()):
        where = {"level": "REMOTE", "links": ()}
    else:
        where = {"level": None, "links": (draw(links(num_ranks)),)}
    return CongestionAdversary(
        service_time=scale * draw(st.sampled_from([5e-6, 20e-6])),
        codel_target=draw(st.sampled_from([50e-6, 200e-6])),
        codel_interval=draw(st.sampled_from([0.05, 0.2])),
        **where,
    )


@st.composite
def region_adversaries(draw, num_nodes: int, hostile: bool = False):
    scale = 20.0 if hostile else 1.0
    return RegionTopologyAdversary(
        regions=draw(
            st.sampled_from([("NA", "EU"), ("NA", "EU", "AS")])
        ),
        assignment=draw(st.sampled_from(["blocked", "round_robin"])),
        cross_latency=scale * draw(st.sampled_from([1e-3, 5e-3])),
    )


@st.composite
def churn_adversaries(draw, num_nodes: int):
    return ChurnAdversary(
        mode=draw(st.sampled_from(["flap", "shrink"])),
        period=draw(st.integers(min_value=1, max_value=2)),
        drop=draw(st.integers(min_value=1, max_value=max(1, num_nodes - 2))),
        min_nodes=2,
    )


def adversaries(
    num_ranks: int,
    num_nodes: int,
    hostile: bool = False,
    include_churn: bool = True,
):
    """One adversary of any kind, valid for the given job shape."""
    pool = [
        byzantine_adversaries(num_ranks, hostile=hostile),
        delay_attack_adversaries(num_ranks, hostile=hostile),
        congestion_adversaries(num_ranks, hostile=hostile),
        region_adversaries(num_nodes, hostile=hostile),
    ]
    if include_churn and num_nodes > 2:
        pool.append(churn_adversaries(num_nodes))
    return st.one_of(pool)


@st.composite
def link_fault_schedules(draw, num_ranks: int, horizon: float = 1.0):
    """A plain FaultSchedule with one link-keyed LinkFault (or broadcast)."""
    src, dst = draw(links(num_ranks))
    directed = draw(st.booleans())
    fault = LinkFault(
        start=draw(st.sampled_from([0.0, horizon * 0.2])),
        length=horizon * 0.5,
        latency_factor=draw(st.sampled_from([2.0, 5.0])),
        src=src if directed else None,
        dst=dst if directed else None,
    )
    return FaultSchedule(name="fuzz-faults", faults=[fault])


@st.composite
def scenarios(
    draw,
    num_ranks: int,
    num_nodes: int,
    max_adversaries: int = 2,
    hostile: bool = False,
):
    """A valid scenario: 1..max adversaries, optionally plus faults.

    When a churn adversary is drawn, every rank/link-keyed adversary and
    fault is keyed inside the churn *floor* shape (min_nodes nodes), so
    it stays in range — and keeps matching — on every churned round.
    """
    n = draw(st.integers(min_value=1, max_value=max_adversaries))
    advs = []
    key_ranks, key_nodes = num_ranks, num_nodes
    if num_nodes > 2 and draw(st.booleans()):
        churn = draw(churn_adversaries(num_nodes))
        advs.append(churn)
        key_nodes = churn.min_nodes
        key_ranks = key_nodes * (num_ranks // num_nodes)
    while len(advs) < n:
        advs.append(draw(adversaries(
            key_ranks, key_nodes, hostile=hostile, include_churn=False,
        )))
    faults = draw(
        st.one_of(st.none(), link_fault_schedules(key_ranks))
    )
    budget = (
        draw(st.sampled_from([1e-6, 10e-6]))
        if hostile
        else draw(st.sampled_from([10e-3, 50e-3]))
    )
    return Scenario(
        name="fuzz",
        adversaries=advs,
        faults=faults,
        error_budget=budget,
    )


@st.composite
def cells(draw, hostile: bool = False):
    """One fuzzer work item: scenario × algorithm × shape, as a dict.

    The dict is exactly the payload archived in a repro file — primitive
    JSON all the way down — and the input
    :func:`repro.scenarios.fuzz.run_cell` consumes.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    ranks_per_node = draw(st.integers(min_value=1, max_value=2))
    num_ranks = num_nodes * ranks_per_node
    scenario = draw(
        scenarios(num_ranks, num_nodes, hostile=hostile)
    )
    return {
        "scenario": scenario.to_dict(),
        "label": draw(labels),
        "num_nodes": num_nodes,
        "ranks_per_node": ranks_per_node,
        "rounds": draw(st.integers(min_value=1, max_value=2)),
        "seed": draw(st.integers(min_value=0, max_value=2**16 - 1)),
    }
