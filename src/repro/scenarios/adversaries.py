"""Typed adversaries: declarative misbehaviour models for clock sync.

Each adversary is a frozen dataclass with a ``kind`` tag, mirroring the
fault model (:mod:`repro.faults.model`): construction validates field
ranges, ``to_dict``/:func:`adversary_from_dict` round-trip through plain
dicts (and therefore JSON), and ``validate(num_ranks, num_nodes,
horizon)`` rejects instances that cannot act on a concrete job *before*
the run starts.

Adversaries are windowed like faults — active over ``[start, start +
length)``, with ``length=None`` meaning "for the whole run" — because
the interesting attacks are often transient: a delay attack during the
fit window corrupts the learned model; the same attack after sync only
perturbs the accuracy check.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Union

from repro.errors import ConfigurationError

#: Directed rank pair: a message travelling ``src -> dst``.
Link = tuple[int, int]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _normalize_links(links) -> tuple[Link, ...]:
    """JSON gives lists of lists; canonical form is a tuple of int pairs."""
    out = []
    for pair in links:
        src, dst = pair
        out.append((int(src), int(dst)))
    return tuple(out)


@dataclass(frozen=True)
class _AdversaryBase:
    """Shared window fields/validation of every adversary type."""

    kind: ClassVar[str] = "adversary"
    start: float = 0.0
    length: float | None = None

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, f"adversary start must be >= 0: {self}")
        _require(
            self.length is None or self.length > 0.0,
            "adversary length must be > 0 (or None for the whole run)",
        )

    @property
    def end(self) -> float:
        return (
            float("inf") if self.length is None else self.start + self.length
        )

    def active(self, true_time: float) -> bool:
        return self.start <= true_time < self.end

    def validate(
        self,
        num_ranks: int | None = None,
        num_nodes: int | None = None,
        horizon: float | None = None,
    ) -> "_AdversaryBase":
        """Reject instances that cannot act on the described job."""
        if horizon is not None and self.start >= horizon:
            raise ConfigurationError(
                f"adversary {self.kind!r} starts at t={self.start:g}s, at "
                f"or beyond the run horizon {horizon:g}s — it would never "
                f"act"
            )
        return self

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            out[f.name] = value
        return out

    def _check_links(self, links, num_ranks: int | None) -> None:
        _require(len(links) > 0, f"{self.kind} needs at least one link")
        for src, dst in links:
            _require(
                src >= 0 and dst >= 0,
                f"{self.kind} link ranks must be >= 0: ({src}, {dst})",
            )
            _require(
                src != dst,
                f"{self.kind} cannot target a self-link: ({src}, {dst})",
            )
            if num_ranks is not None and not (
                src < num_ranks and dst < num_ranks
            ):
                raise ConfigurationError(
                    f"adversary {self.kind!r} targets link "
                    f"({src}, {dst}), but the job has ranks "
                    f"0..{num_ranks - 1}"
                )


@dataclass(frozen=True)
class ByzantineClockAdversary(_AdversaryBase):
    """Ranks that lie about timestamps during offset measurement.

    While active, every sync-protocol timestamp crossing a listed
    rank's boundary (the ping-pong payloads of :mod:`repro.sync.offset`
    it reports as a reference, or records as a client) is shifted by
    ``bias`` seconds plus a zero-mean normal term of standard deviation
    ``noise`` — the lie is injected at the message boundary, so honest
    ranks fit their linear models against poisoned measurements while
    ground-truth clocks stay untouched (which is what lets the
    degradation harness score the damage).
    """

    kind: ClassVar[str] = "byzantine_clock"
    ranks: tuple[int, ...] = (1,)
    bias: float = 0.0
    noise: float = 0.0
    name: str = "byzantine_clock"

    def __post_init__(self) -> None:
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
        super().__post_init__()
        _require(len(self.ranks) > 0, "byzantine adversary needs ranks")
        _require(
            all(r >= 0 for r in self.ranks),
            "byzantine ranks must be >= 0",
        )
        _require(self.noise >= 0.0, "byzantine noise must be >= 0")
        _require(
            self.bias != 0.0 or self.noise > 0.0,
            "byzantine adversary must lie somehow (bias or noise)",
        )

    def validate(self, num_ranks=None, num_nodes=None, horizon=None):
        super().validate(num_ranks, num_nodes, horizon)
        if num_ranks is not None:
            for r in self.ranks:
                if not r < num_ranks:
                    raise ConfigurationError(
                        f"adversary {self.kind!r} targets rank {r}, but "
                        f"the job has ranks 0..{num_ranks - 1}"
                    )
        return self


@dataclass(frozen=True)
class DelayAttackAdversary(_AdversaryBase):
    """Asymmetric/variable extra delay on chosen directed links.

    Two-way time transfer assumes symmetric paths; adding
    ``extra_delay`` seconds (plus exponential ``jitter``, times
    ``factor``) to *one direction* of a link biases the estimated offset
    by about half the asymmetry — the textbook delay attack.  ``links``
    are directed ``(src, dst)`` rank pairs; list both directions to
    model a symmetric (much less harmful) slowdown.
    """

    kind: ClassVar[str] = "delay_attack"
    links: tuple[Link, ...] = ((1, 0),)
    extra_delay: float = 0.0
    factor: float = 1.0
    jitter: float = 0.0
    name: str = "delay_attack"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalize_links(self.links))
        super().__post_init__()
        self._check_links(self.links, None)
        _require(self.extra_delay >= 0.0, "extra_delay must be >= 0")
        _require(self.factor > 0.0, "delay factor must be > 0")
        _require(self.jitter >= 0.0, "delay jitter must be >= 0")
        _require(
            self.extra_delay > 0.0 or self.factor != 1.0 or self.jitter > 0.0,
            "delay attack must perturb something",
        )

    def validate(self, num_ranks=None, num_nodes=None, horizon=None):
        super().validate(num_ranks, num_nodes, horizon)
        self._check_links(self.links, num_ranks)
        return self


@dataclass(frozen=True)
class CongestionAdversary(_AdversaryBase):
    """A congested bottleneck with CoDel-style queueing delay.

    Messages crossing a matching link (or any link at ``level``, e.g.
    ``"REMOTE"``) pass through a single-server queue with deterministic
    ``service_time`` per message: each one waits for the queue to drain
    before adding its own service time, so sustained traffic builds
    sojourn (queueing delay) exactly like a standing bottleneck buffer.
    The AQM twist follows CoDel: once the sojourn has stayed above
    ``codel_target`` for ``codel_interval`` seconds, the queue is
    drained (the controller "drops" the standing backlog) and the
    interval restarts — so the queueing delay saws between the target
    and the uncontrolled peak rather than growing without bound.
    """

    kind: ClassVar[str] = "congestion"
    level: str | None = "REMOTE"
    links: tuple[Link, ...] = ()
    service_time: float = 20e-6
    codel_target: float = 50e-6
    codel_interval: float = 0.1
    name: str = "congestion"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalize_links(self.links))
        super().__post_init__()
        _require(self.service_time > 0.0, "service_time must be > 0")
        _require(self.codel_target > 0.0, "codel_target must be > 0")
        _require(self.codel_interval > 0.0, "codel_interval must be > 0")
        _require(
            self.level is not None or len(self.links) > 0,
            "congestion adversary needs a level or explicit links",
        )
        if self.links:
            self._check_links(self.links, None)

    def validate(self, num_ranks=None, num_nodes=None, horizon=None):
        super().validate(num_ranks, num_nodes, horizon)
        if self.links:
            self._check_links(self.links, num_ranks)
        return self


@dataclass(frozen=True)
class RegionTopologyAdversary(_AdversaryBase):
    """Region-tiered topology: NA/EU/AS-style latency classes.

    Nodes are partitioned into ``regions`` (``"blocked"``: contiguous
    node ranges; ``"round_robin"``: node i → region i mod k), and every
    inter-node message between *different* regions gains
    ``cross_latency`` seconds of one-way latency — the WAN gap that
    turns a flat cluster into a geo-distributed one.  ``pair_latency``
    overrides specific region pairs (key ``"A|B"`` with the names
    sorted), e.g. making NA↔AS slower than NA↔EU.  Applied through the
    fabric hook, so only REMOTE (inter-node) traffic is priced.
    """

    kind: ClassVar[str] = "region_topology"
    regions: tuple[str, ...] = ("NA", "EU", "AS")
    assignment: str = "blocked"
    cross_latency: float = 30e-3
    pair_latency: tuple[tuple[str, float], ...] = ()
    name: str = "region_topology"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "regions", tuple(str(r) for r in self.regions)
        )
        object.__setattr__(
            self,
            "pair_latency",
            tuple((str(k), float(v)) for k, v in self.pair_latency),
        )
        super().__post_init__()
        _require(len(self.regions) >= 2, "need at least two regions")
        _require(
            len(set(self.regions)) == len(self.regions),
            "region names must be unique",
        )
        _require(
            self.assignment in ("blocked", "round_robin"),
            f"unknown region assignment {self.assignment!r}",
        )
        _require(self.cross_latency >= 0.0, "cross_latency must be >= 0")
        known = set(self.regions)
        for key, value in self.pair_latency:
            parts = key.split("|")
            _require(
                len(parts) == 2 and parts[0] < parts[1],
                f"pair_latency key must be 'A|B' with A < B: {key!r}",
            )
            _require(
                parts[0] in known and parts[1] in known,
                f"pair_latency key names unknown regions: {key!r}",
            )
            _require(value >= 0.0, f"pair latency must be >= 0: {key!r}")
        _require(
            self.cross_latency > 0.0
            or any(v > 0.0 for _, v in self.pair_latency),
            "region adversary must price something",
        )

    def region_of(self, node: int, num_nodes: int) -> str:
        """The region node ``node`` belongs to under this assignment."""
        k = len(self.regions)
        if self.assignment == "round_robin":
            return self.regions[node % k]
        # blocked: contiguous, nearly equal-size ranges.
        return self.regions[min(k - 1, node * k // max(1, num_nodes))]

    def latency_between(self, region_a: str, region_b: str) -> float:
        """Extra one-way latency between two regions (0 within one)."""
        if region_a == region_b:
            return 0.0
        key = "|".join(sorted((region_a, region_b)))
        for k, v in self.pair_latency:
            if k == key:
                return v
        return self.cross_latency


@dataclass(frozen=True)
class ChurnAdversary(_AdversaryBase):
    """Rank churn mid-campaign: the topology changes between rounds.

    Mid-run membership change would deadlock MPI collectives (there is
    no fault-tolerant MPI in the simulator), so churn acts at the
    campaign level — each round of a scenario cell is one simulated
    ``mpirun``, and this adversary reshapes the machine between rounds:

    * ``"flap"`` — every ``period`` rounds the job alternates between
      the base node count and ``base - drop`` (nodes leaving and
      rejoining).
    * ``"shrink"`` — ``drop`` nodes leave every ``period`` rounds,
      floored at ``min_nodes``.
    * ``"grow"`` — the job starts at ``min_nodes`` and gains ``drop``
      nodes every ``period`` rounds, capped at the base count.

    Sync state never survives a churn event: each round resynchronizes
    from scratch on the new topology, which is exactly the cost the
    degradation tables surface.
    """

    kind: ClassVar[str] = "churn"
    mode: str = "flap"
    period: int = 1
    drop: int = 1
    min_nodes: int = 2
    name: str = "churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.mode in ("flap", "shrink", "grow"),
            f"unknown churn mode {self.mode!r}",
        )
        _require(self.period >= 1, "churn period must be >= 1")
        _require(self.drop >= 1, "churn drop must be >= 1")
        _require(self.min_nodes >= 1, "churn min_nodes must be >= 1")

    def validate(self, num_ranks=None, num_nodes=None, horizon=None):
        super().validate(num_ranks, num_nodes, horizon)
        if num_nodes is not None and self.min_nodes > num_nodes:
            raise ConfigurationError(
                f"adversary {self.kind!r} keeps min {self.min_nodes} "
                f"nodes, but the job only has {num_nodes}"
            )
        return self

    def nodes_at(self, round_idx: int, base_nodes: int) -> int:
        """Node count for campaign round ``round_idx`` (0-based)."""
        steps = round_idx // self.period
        if self.mode == "flap":
            if steps % 2 == 0:
                return base_nodes
            return max(self.min_nodes, base_nodes - self.drop)
        if self.mode == "shrink":
            return max(self.min_nodes, base_nodes - steps * self.drop)
        # grow
        return min(base_nodes, self.min_nodes + steps * self.drop)


Adversary = Union[
    ByzantineClockAdversary,
    DelayAttackAdversary,
    CongestionAdversary,
    RegionTopologyAdversary,
    ChurnAdversary,
]

ADVERSARY_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        ByzantineClockAdversary,
        DelayAttackAdversary,
        CongestionAdversary,
        RegionTopologyAdversary,
        ChurnAdversary,
    )
}


def adversary_from_dict(data: dict) -> Adversary:
    """Reconstruct an adversary from its ``to_dict`` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    try:
        cls = ADVERSARY_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary kind {kind!r}; known: "
            f"{sorted(ADVERSARY_TYPES)}"
        ) from None
    if "pair_latency" in payload:
        payload["pair_latency"] = tuple(
            (k, v) for k, v in payload["pair_latency"]
        )
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad fields for {kind!r}: {exc}"
        ) from None
