"""Engine-side application of a scenario's adversaries.

:class:`AdversaryInjector` extends the fault injector
(:class:`~repro.faults.injector.FaultInjector`) with the scenario hook
points the engine calls on its hot paths:

* **link-delay perturbation keyed by (src, dst)** — delay attacks add
  asymmetric extra delay to matching directed links; congestion
  adversaries add CoDel-controlled queueing delay (on top of whatever
  plain :class:`~repro.faults.model.LinkFault`\\ s the scenario carries,
  which the base class applies first).
* **timestamp perturbation at the sync-message boundary** — byzantine
  ranks shift every sync-protocol timestamp payload they put on the
  wire (:data:`~repro.sync.offset.PINGPONG_TAG` messages), poisoning the
  offset measurements honest ranks fit their models against.
* **region pricing** — inter-node messages crossing region boundaries
  gain the scenario's WAN latency (only at ``Level.REMOTE``, like the
  fabric hook).

All perturbations are pure functions of virtual time plus draws from the
calling process's seeded RNG stream — a scenario + seed reproduces
bit-identically, which is what makes fuzzer repro files replayable.
A scenario with no adversaries degenerates to the plain fault injector,
whose hooks draw no RNG when nothing matches, so such a run is
byte-identical to one without any injector at all (pinned by the
mutant-style tests in ``tests/scenarios``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.obs.health import QUEUE_METRIC
from repro.scenarios.scenario import Scenario
from repro.simmpi.network import Level
from repro.sync.offset import PINGPONG_TAG

#: Placeholder schedule for scenarios that carry no plain faults.
_EMPTY_FAULTS = FaultSchedule(name="none")


class _CodelQueue:
    """One bottleneck queue with CoDel-style standing-delay control.

    ``busy_until`` is when the server frees up; ``above_since`` tracks
    how long the sojourn has continuously exceeded the target.  Plain
    mutable state keyed per bottleneck — the engine processes events in
    virtual-time order, so updates arrive with non-decreasing ``time``.
    """

    __slots__ = ("busy_until", "above_since")

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.above_since: float | None = None


class AdversaryInjector(FaultInjector):
    """Applies a :class:`~repro.scenarios.scenario.Scenario` at run time."""

    def __init__(
        self,
        scenario: Scenario,
        machine=None,
        node_of: Callable[[int], int] | None = None,
        num_nodes: int | None = None,
        timeseries=None,
    ) -> None:
        if machine is not None:
            node_of = node_of or machine.node_of
            num_nodes = num_nodes or machine.num_nodes
        super().__init__(
            scenario.faults if scenario.faults is not None else _EMPTY_FAULTS,
            node_of=node_of,
        )
        self.scenario = scenario
        self.num_nodes = num_nodes or 1
        #: Optional telemetry bank; queueing delays are sampled into it
        #: (passive — bank presence never changes simulation results).
        self.timeseries = timeseries
        self._byzantine = scenario.byzantine
        self._delay_attacks = scenario.delay_attacks
        self._congestion = scenario.congestion
        self._regions = scenario.regions
        #: One queue per (congestion adversary, bottleneck key).
        self._queues: dict[tuple, _CodelQueue] = {}
        #: Diagnostics: adversarial perturbations actually applied.
        self.payloads_perturbed = 0
        self.attack_delays_applied = 0
        self.queue_delays_applied = 0
        self.codel_drains = 0
        self.region_delays_applied = 0

    # ------------------------------------------------------------------
    # Payload tampering (sync-message boundary)
    # ------------------------------------------------------------------
    @property
    def perturbs_payloads(self) -> bool:  # type: ignore[override]
        return bool(self._byzantine)

    def perturb_payload(
        self,
        time: float,
        src: int,
        dst: int,
        tag: int,
        payload,
        rng: np.random.Generator,
    ):
        """Corrupt sync timestamps crossing a byzantine rank's boundary.

        A byzantine rank garbles the timestamps it *reports* when acting
        as a reference (outbound ``t_last``) and the ones it *records*
        when acting as a client (inbound — modelled at the same wire
        point so one hook covers both, deterministically).  Matters:
        lying purely as a client would be invisible, since the offset
        protocols never read the client's payload.  Only float payloads
        on the sync ping-pong tag are touched — everything else
        (collective payloads, accuracy-check reports) passes through
        untouched, and pairs of honest ranks draw no RNG here.
        """
        if tag != PINGPONG_TAG or not isinstance(payload, float):
            # Clock reads may arrive as numpy float64 (a float subclass),
            # so isinstance, not an exact type check.
            return payload
        for adv in self._byzantine:
            if (
                src in adv.ranks or dst in adv.ranks
            ) and adv.active(time):
                payload += adv.bias
                if adv.noise > 0.0:
                    payload += rng.normal(0.0, adv.noise)
                self.payloads_perturbed += 1
        return payload

    # ------------------------------------------------------------------
    # Link-delay perturbation keyed by (src, dst)
    # ------------------------------------------------------------------
    def perturb_delay(
        self,
        time: float,
        level: Level,
        delay: float,
        rng: np.random.Generator,
        *,
        src: int | None = None,
        dst: int | None = None,
    ) -> float:
        # Plain link faults first (the composable FaultSchedule layer).
        delay = super().perturb_delay(
            time, level, delay, rng, src=src, dst=dst
        )
        for adv in self._delay_attacks:
            if not adv.active(time):
                continue
            if src is None or (src, dst) not in adv.links:
                continue
            delay = delay * adv.factor + adv.extra_delay
            if adv.jitter > 0.0:
                delay += rng.exponential(adv.jitter)
            self.attack_delays_applied += 1
        for adv in self._congestion:
            if not adv.active(time):
                continue
            matched = False
            key = None
            if adv.links:
                if src is not None and (src, dst) in adv.links:
                    matched = True
                    key = (id(adv), src, dst)
            elif adv.level is None or adv.level == level.name:
                matched = True
                key = (id(adv),)
            if not matched:
                continue
            delay += self._queue_delay(adv, key, time, src)
        if self._regions and level == Level.REMOTE and src is not None:
            delay += self._region_delay(time, src, dst)
        return delay

    def _queue_delay(self, adv, key, time: float, src) -> float:
        """Sojourn through one CoDel-controlled bottleneck queue."""
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _CodelQueue()
        start_service = time if time > queue.busy_until else queue.busy_until
        sojourn = start_service - time
        if sojourn > adv.codel_target:
            if queue.above_since is None:
                queue.above_since = time
            elif time - queue.above_since >= adv.codel_interval:
                # The controller fires: drain the standing backlog and
                # restart the interval — this message sails through.
                start_service = time
                sojourn = 0.0
                queue.above_since = None
                self.codel_drains += 1
        else:
            queue.above_since = None
        queue.busy_until = start_service + adv.service_time
        if sojourn > 0.0:
            self.queue_delays_applied += 1
            if self.timeseries is not None:
                self.timeseries.sample(
                    QUEUE_METRIC, time, sojourn, rank=src
                )
        return sojourn

    def _region_delay(self, time: float, src: int, dst: int) -> float:
        """Extra WAN latency when the message crosses region tiers."""
        extra = 0.0
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        for adv in self._regions:
            if not adv.active(time):
                continue
            priced = adv.latency_between(
                adv.region_of(src_node, self.num_nodes),
                adv.region_of(dst_node, self.num_nodes),
            )
            if priced > 0.0:
                extra += priced
                self.region_delays_applied += 1
        return extra


class RegionFabric:
    """Fabric adapter pricing a region adversary as whole-run latency.

    For plain :class:`~repro.simmpi.simulation.Simulation` runs that
    want region tiers without an adversarial injector: wraps an optional
    base fabric and adds the adversary's cross-region latency to every
    inter-node pair (the fabric hook is time-free, so the adversary's
    window is ignored — use :class:`AdversaryInjector` for windowed
    region pricing).
    """

    def __init__(self, adversary, num_nodes: int, base=None) -> None:
        self.adversary = adversary
        self.num_nodes = num_nodes
        self.base = base

    def extra_latency(self, node_a: int, node_b: int) -> float:
        extra = (
            self.base.extra_latency(node_a, node_b)
            if self.base is not None
            else 0.0
        )
        adv = self.adversary
        return extra + adv.latency_between(
            adv.region_of(node_a, self.num_nodes),
            adv.region_of(node_b, self.num_nodes),
        )
