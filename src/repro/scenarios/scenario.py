"""Scenario container: adversaries + faults + an error budget, named.

A :class:`Scenario` is the unit the degradation harness and the fuzzer
consume: an ordered set of typed adversaries
(:mod:`repro.scenarios.adversaries`), optionally composed with a plain
:class:`~repro.faults.schedule.FaultSchedule` (the two layers share the
engine injector, so "a byzantine rank *during* a congestion burst" is
one scenario), plus the error budget the cell is judged against.

Scenarios round-trip through dicts/JSON (``to_dict``/``from_dict``,
``save``/``load``) so fuzzer repros are replayable files, and
``validate`` range-checks every adversary and fault against a concrete
job shape before the run starts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule
from repro.scenarios.adversaries import (
    Adversary,
    ByzantineClockAdversary,
    ChurnAdversary,
    CongestionAdversary,
    DelayAttackAdversary,
    RegionTopologyAdversary,
    adversary_from_dict,
)

#: Default tolerated post-sync max |offset| (s) before a cell counts as
#: blown.  Deliberately generous: the fuzzer hunts for *catastrophic*
#: degradation and broken invariants, not ordinary accuracy loss.
DEFAULT_ERROR_BUDGET = 50e-3


@dataclass(frozen=True)
class Scenario:
    """A named adversarial scenario, sorted deterministically."""

    name: str
    adversaries: tuple[Adversary, ...] = ()
    faults: FaultSchedule | None = None
    error_budget: float = DEFAULT_ERROR_BUDGET
    description: str = ""

    def __init__(
        self,
        name: str,
        adversaries: Sequence[Adversary] = (),
        faults: FaultSchedule | None = None,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        description: str = "",
    ) -> None:
        if not name:
            raise ConfigurationError("a scenario needs a name")
        if not error_budget > 0.0:
            raise ConfigurationError("error budget must be > 0")
        ordered = tuple(
            sorted(adversaries, key=lambda a: (a.start, a.kind, a.name))
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "adversaries", ordered)
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "error_budget", float(error_budget))
        object.__setattr__(self, "description", description)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.adversaries) + (
            len(self.faults) if self.faults is not None else 0
        )

    def __iter__(self) -> Iterator[Adversary]:
        return iter(self.adversaries)

    def of_kind(self, kind: str) -> list[Adversary]:
        return [a for a in self.adversaries if a.kind == kind]

    @property
    def byzantine(self) -> list[ByzantineClockAdversary]:
        return self.of_kind("byzantine_clock")

    @property
    def delay_attacks(self) -> list[DelayAttackAdversary]:
        return self.of_kind("delay_attack")

    @property
    def congestion(self) -> list[CongestionAdversary]:
        return self.of_kind("congestion")

    @property
    def regions(self) -> list[RegionTopologyAdversary]:
        return self.of_kind("region_topology")

    @property
    def churn(self) -> list[ChurnAdversary]:
        return self.of_kind("churn")

    # ------------------------------------------------------------------
    # Validation against a concrete job
    # ------------------------------------------------------------------
    def validate(
        self,
        num_ranks: int | None = None,
        num_nodes: int | None = None,
        horizon: float | None = None,
    ) -> "Scenario":
        """Range-check every adversary and fault against the job shape.

        Raises :class:`~repro.errors.ConfigurationError` naming the
        first offender; returns ``self`` so calls chain.
        """
        for adv in self.adversaries:
            adv.validate(
                num_ranks=num_ranks, num_nodes=num_nodes, horizon=horizon
            )
        if self.faults is not None:
            self.faults.validate(
                num_ranks=num_ranks, num_nodes=num_nodes, horizon=horizon
            )
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "error_budget": self.error_budget,
            "adversaries": [a.to_dict() for a in self.adversaries],
            "faults": (
                self.faults.to_dict() if self.faults is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        try:
            adversaries = [
                adversary_from_dict(d) for d in data.get("adversaries", [])
            ]
            faults = data.get("faults")
            return cls(
                name=data["name"],
                adversaries=adversaries,
                faults=(
                    FaultSchedule.from_dict(faults)
                    if faults is not None
                    else None
                ),
                error_budget=data.get(
                    "error_budget", DEFAULT_ERROR_BUDGET
                ),
                description=data.get("description", ""),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario dict is missing {exc}"
            ) from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "Scenario":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# Preset scenarios (the degradation-table rows)
# ----------------------------------------------------------------------
def delay_attack(
    links: Sequence[tuple[int, int]] = ((1, 0),),
    extra_delay: float = 100e-6,
    jitter: float = 10e-6,
) -> Scenario:
    """Asymmetric delay attack on the reference links during sync."""
    return Scenario(
        name="delay_attack",
        description=(
            f"asymmetric extra delay of {extra_delay:g}s on "
            f"{len(tuple(links))} directed link(s) — defeats two-way "
            f"time transfer"
        ),
        adversaries=[
            DelayAttackAdversary(
                links=tuple(links),
                extra_delay=extra_delay,
                jitter=jitter,
            ),
        ],
    )


def byzantine_rank(
    ranks: Sequence[int] = (1,),
    bias: float = 200e-6,
    noise: float = 20e-6,
) -> Scenario:
    """Ranks that lie about their timestamps during offset measurement."""
    return Scenario(
        name="byzantine_rank",
        description=(
            f"rank(s) {tuple(ranks)} shift every sync timestamp by "
            f"{bias:g}s (+{noise:g}s noise)"
        ),
        adversaries=[
            ByzantineClockAdversary(
                ranks=tuple(ranks), bias=bias, noise=noise
            ),
        ],
    )


def congested_fabric(
    service_time: float = 15e-6,
    codel_target: float = 60e-6,
    codel_interval: float = 0.05,
) -> Scenario:
    """A CoDel-controlled bottleneck on all inter-node traffic."""
    return Scenario(
        name="congested_fabric",
        description=(
            f"REMOTE bottleneck queue, {service_time:g}s service time, "
            f"CoDel target {codel_target:g}s / interval "
            f"{codel_interval:g}s"
        ),
        adversaries=[
            CongestionAdversary(
                level="REMOTE",
                service_time=service_time,
                codel_target=codel_target,
                codel_interval=codel_interval,
            ),
        ],
    )


def region_tiers(
    cross_latency: float = 5e-3,
    far_latency: float = 20e-3,
) -> Scenario:
    """NA/EU/AS latency tiers: nearby regions close, AS far from both."""
    return Scenario(
        name="region_tiers",
        description=(
            f"NA/EU/AS regions, {cross_latency:g}s cross-region latency "
            f"({far_latency:g}s to AS)"
        ),
        adversaries=[
            RegionTopologyAdversary(
                regions=("NA", "EU", "AS"),
                assignment="blocked",
                cross_latency=cross_latency,
                pair_latency=(
                    ("AS|EU", far_latency),
                    ("AS|NA", far_latency),
                ),
            ),
        ],
    )


def rank_churn(
    mode: str = "flap", drop: int = 2, min_nodes: int = 2
) -> Scenario:
    """Nodes leave and rejoin between campaign rounds."""
    return Scenario(
        name="rank_churn",
        description=(
            f"churn mode {mode!r}: {drop} node(s) per event, floor "
            f"{min_nodes}"
        ),
        adversaries=[
            ChurnAdversary(mode=mode, drop=drop, min_nodes=min_nodes),
        ],
    )


PRESETS: dict[str, Callable[..., Scenario]] = {
    "delay_attack": delay_attack,
    "byzantine_rank": byzantine_rank,
    "congested_fabric": congested_fabric,
    "region_tiers": region_tiers,
    "rank_churn": rank_churn,
}


def make_preset(name: str, **overrides) -> Scenario:
    """Build a preset scenario, optionally overriding factory parameters."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    return factory(**overrides)
