"""Standing scenario fuzzer: ``python -m repro.scenarios.fuzz``.

Draws random scenario × algorithm cells from the Hypothesis strategies
in :mod:`repro.scenarios.strategies`, runs each under the strict
simulation sanitizer, and scores it with the degradation harness
(:mod:`repro.scenarios.runner`).  A cell *fails* when it records any
violation: a broken engine invariant, a non-finite measurement, or a
blown error budget (measured or ground-truth).  Hypothesis then shrinks
the failing cell to a minimal example, which is archived as a replayable
JSON repro file::

    python -m repro.scenarios.fuzz --budget 25 --seed 0 --out fuzz-repros
    python -m repro.scenarios.fuzz --replay fuzz-repros/repro_ab12cd34ef56.json

Replaying re-runs the archived cell bit-deterministically and exits 1
when the violation reproduces — the repro file is self-contained, so it
can be committed next to a bug report.  ``--hostile`` cranks adversary
magnitudes and shrinks error budgets so violations are guaranteed
findable within a tiny budget (CI smoke uses this to exercise the
archive + replay path end to end on every run).

Hypothesis is imported lazily (inside :func:`fuzz`) so ``--replay``
works without it installed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

from repro.errors import InvariantViolation
from repro.scenarios.runner import CellResult, run_scenario_cell

#: Bumped when the repro-file layout changes incompatibly.
REPRO_VERSION = 1


def run_cell(cell: dict, check: str | None = "strict") -> CellResult:
    """Run one fuzzer cell dict under the sanitizer; score violations.

    A strict-mode :class:`~repro.errors.InvariantViolation` is folded
    into the result's violation list (the fuzzer wants one uniform
    "this cell is bad" signal, and the message is deterministic).
    """
    try:
        return run_scenario_cell(
            cell["scenario"],
            cell["label"],
            num_nodes=cell["num_nodes"],
            ranks_per_node=cell["ranks_per_node"],
            rounds=cell["rounds"],
            seed=cell["seed"],
            check=check,
        )
    except InvariantViolation as exc:
        result = CellResult(
            scenario=cell["scenario"]["name"],
            label=cell["label"],
            seed=cell["seed"],
            error_budget=cell["scenario"].get("error_budget", 0.0),
        )
        result.violations.append(f"invariant:{exc}")
        return result


def archive_path(out_dir: str, cell: dict) -> str:
    """Content-addressed repro filename (stable across re-runs)."""
    digest = hashlib.sha256(
        json.dumps(cell, sort_keys=True).encode()
    ).hexdigest()[:12]
    return os.path.join(out_dir, f"repro_{digest}.json")


def archive(out_dir: str, cell: dict, violations: list[str]) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = archive_path(out_dir, cell)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "repro_version": REPRO_VERSION,
                "cell": cell,
                "violations": violations,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    return path


def fuzz(
    budget: int,
    seed: int,
    out_dir: str,
    hostile: bool = False,
    check: str | None = "strict",
) -> int:
    """Draw up to ``budget`` cells; archive the shrunk first failure.

    Returns 0 when every cell passed, 1 when a violation was found and
    archived.  Deterministic for a given (budget, seed, hostile) triple:
    the Hypothesis database is disabled and generation is seeded, so CI
    re-runs reproduce the identical sequence of cells.
    """
    from hypothesis import HealthCheck, given
    from hypothesis import seed as hyp_seed
    from hypothesis import settings

    from repro.scenarios.strategies import cells

    # Hypothesis re-runs the shrunk minimal example last, so the holder
    # ends up containing exactly the cell worth archiving.
    last_failure: dict = {}
    examples = {"count": 0}

    @settings(
        max_examples=budget,
        database=None,
        deadline=None,
        print_blob=False,
        suppress_health_check=list(HealthCheck),
    )
    @hyp_seed(seed)
    @given(cells(hostile=hostile))
    def probe(cell):
        examples["count"] += 1
        result = run_cell(cell, check=check)
        if result.violations:
            last_failure["cell"] = cell
            last_failure["violations"] = list(result.violations)
            raise AssertionError(
                f"scenario violation: {result.violations}"
            )

    try:
        probe()
    except AssertionError:
        path = archive(
            out_dir, last_failure["cell"], last_failure["violations"]
        )
        print(f"violation found after {examples['count']} cell run(s):")
        for violation in last_failure["violations"]:
            print(f"  {violation}")
        print(f"shrunk repro archived: {path}")
        print(
            f"replay with: python -m repro.scenarios.fuzz --replay {path}"
        )
        return 1
    print(f"{examples['count']} cell run(s), no violations")
    return 0


def replay(path: str, check: str | None = "strict") -> int:
    """Re-run an archived repro; exit 1 when the violation reproduces."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("repro_version") != REPRO_VERSION:
        print(
            f"unsupported repro_version {data.get('repro_version')!r} "
            f"(expected {REPRO_VERSION})",
            file=sys.stderr,
        )
        return 2
    result = run_cell(data["cell"], check=check)
    expected = data.get("violations", [])
    print(f"archived violations: {expected}")
    print(f"replayed violations: {result.violations}")
    if result.violations == expected and result.violations:
        print("violation reproduced")
        return 1
    if result.violations:
        print("different violations on replay")
        return 1
    print("violation did NOT reproduce")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description=(
            "Fuzz random adversarial scenario x algorithm cells; "
            "archive shrunk violations as replayable JSON repro files."
        ),
    )
    parser.add_argument(
        "--budget", type=int, default=25, metavar="N",
        help="maximum number of cells to draw (default 25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="fuzz-repros", metavar="DIR",
        help="directory repro files are archived under",
    )
    parser.add_argument(
        "--hostile", action="store_true",
        help="crank adversary magnitudes and shrink error budgets so "
             "violations are guaranteed findable (CI smoke mode)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="run without the strict simulation sanitizer",
    )
    parser.add_argument(
        "--replay", metavar="FILE",
        help="re-run an archived repro file instead of fuzzing; exits 1 "
             "when the violation reproduces",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    check = None if args.no_check else "strict"
    if args.replay:
        return replay(args.replay, check=check)
    return fuzz(
        args.budget, args.seed, args.out,
        hostile=args.hostile, check=check,
    )


if __name__ == "__main__":
    sys.exit(main())
