"""Adversarial scenario registry + standing fuzz rig.

The paper's hierarchy assumes honest clocks and well-behaved links; this
package stresses exactly those assumptions.  It layers *adversaries* —
typed, declarative misbehaviour models — on top of the fault subsystem
(:mod:`repro.faults`), composes them into named :class:`Scenario`\\ s,
and applies them to simulated sync campaigns through the engine's
injector/fabric hook points:

* :class:`~repro.scenarios.adversaries.ByzantineClockAdversary` — ranks
  that lie about timestamps during offset measurement (payload
  tampering at the sync-message boundary).
* :class:`~repro.scenarios.adversaries.DelayAttackAdversary` —
  asymmetric extra delay on chosen directed links, the classic attack
  that defeats two-way time transfer.
* :class:`~repro.scenarios.adversaries.CongestionAdversary` — a
  CoDel-style bottleneck queue adding sojourn-dependent queueing delay.
* :class:`~repro.scenarios.adversaries.RegionTopologyAdversary` —
  region-tiered latency classes (NA/EU/AS) priced through the fabric
  hook.
* :class:`~repro.scenarios.adversaries.ChurnAdversary` — rank churn
  between campaign rounds (topology swap per simulated mpirun).

On top sits a scenario fuzzer (``python -m repro.scenarios.fuzz``) that
draws random scenario × algorithm cells from Hypothesis strategies, runs
them sanitizer-checked, and shrinks + archives violations as replayable
JSON repro files.  See DESIGN.md §16.
"""

from repro.scenarios.adversaries import (
    ADVERSARY_TYPES,
    Adversary,
    ByzantineClockAdversary,
    ChurnAdversary,
    CongestionAdversary,
    DelayAttackAdversary,
    RegionTopologyAdversary,
    adversary_from_dict,
)
from repro.scenarios.apply import AdversaryInjector, RegionFabric
from repro.scenarios.scenario import (
    PRESETS,
    Scenario,
    make_preset,
)

__all__ = [
    "ADVERSARY_TYPES",
    "Adversary",
    "AdversaryInjector",
    "ByzantineClockAdversary",
    "ChurnAdversary",
    "CongestionAdversary",
    "DelayAttackAdversary",
    "PRESETS",
    "RegionFabric",
    "RegionTopologyAdversary",
    "Scenario",
    "adversary_from_dict",
    "make_preset",
]
