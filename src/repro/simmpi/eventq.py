"""Pending-event queues for the engine: legacy heap and calendar buckets.

The engine's event loop needs three operations on the pending-event set —
``push``, ``pop-min`` and an exact *frontier* peek (the causality gate
compares every command against the earliest pending event).  Events are
``(time, seq, rank)`` tuples where ``seq`` is a monotonic tie-breaker, so
``(time, seq)`` is a total order and **any** implementation that pops in
that order is observationally identical to any other: the queue kind is a
pure performance knob, like the RNG pool chunk size.

Two kernels:

* :class:`HeapQueue` — the original ``heapq`` binary heap.  O(log n) per
  operation with n the pending-event count; the constant is small (C
  heap, tuple comparisons) but grows with rank count, since a p-rank job
  keeps ~p events pending.
* :class:`CalendarQueue` — fixed-width time buckets held in a sparse
  dict, with a small heap of *bucket indices* standing in for the usual
  overflow list.  Pops walk the current bucket (sorted once, lazily, per
  bucket) by cursor; pushes append to a future bucket or bisect into the
  current bucket's un-consumed remainder.  Per-event cost stays O(1)
  amortized regardless of how many events are pending, because the
  bucket-index heap sees one entry per *occupied bucket*, not per event.

Both maintain ``frontier`` — the exact time of the earliest live event
(``math.inf`` when empty) — as a plain attribute, so the engine's
causality gate is one float comparison instead of a heap peek, and
``size`` — the live-event count — for queue-depth telemetry that is
identical across kernels (satisfying the PR-4/6 health-report contract).

Cancellation is lazy: :meth:`cancel` marks a sequence number dead and the
queue discards the entry whenever it surfaces.  ``size`` drops
immediately; ``frontier`` may transiently point at a cancelled entry
(it is corrected by the next ``pop``), which is documented behaviour —
the engine never gates on a cancelled wakeup's time because it only
cancels entries it will not wait for.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from math import inf

__all__ = [
    "CalendarQueue",
    "HeapQueue",
    "QUEUE_KINDS",
    "auto_bucket_width",
    "make_queue",
]

#: Recognized ``event_queue`` spellings, in preference order.
QUEUE_KINDS = ("calendar", "heap")

#: Auto-width numerator: the calendar queue aims for a handful of events
#: per bucket.  Pending events cluster within one per-message service
#: window (~send overhead + latency), and a p-rank job keeps ~p of them
#: in flight, so ``window * TARGET_OCCUPANCY / p`` puts a near-constant
#: number of events in each bucket at every scale.
_TARGET_OCCUPANCY = 8.0


def auto_bucket_width(service_window: float, num_ranks: int) -> float:
    """Bucket width targeting ~:data:`_TARGET_OCCUPANCY` events/bucket.

    ``service_window`` is the engine's estimate of one message's service
    time (send/recv overheads plus the finest base latency); it is a
    deterministic function of the network model, so the width — like the
    queue kind itself — never depends on anything but the configuration.
    """
    window = service_window if service_window > 0.0 else 1e-6
    return window * _TARGET_OCCUPANCY / max(1, num_ranks)


class HeapQueue:
    """Binary-heap event queue (the pre-calendar kernel, kept for A/B)."""

    __slots__ = ("_heap", "_cancelled", "frontier", "size")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        self._cancelled: set[int] = set()
        self.frontier = inf
        self.size = 0

    def push(self, time: float, seq: int, rank: int) -> None:
        heappush(self._heap, (time, seq, rank))
        self.size += 1
        if time < self.frontier:
            self.frontier = time

    def pop(self) -> tuple[float, int, int]:
        heap = self._heap
        cancelled = self._cancelled
        while True:
            item = heappop(heap)
            if cancelled and item[1] in cancelled:
                cancelled.discard(item[1])
                continue
            break
        self.size -= 1
        if heap:
            self.frontier = heap[0][0]
        else:
            self.frontier = inf
        return item

    def cancel(self, seq: int) -> None:
        """Lazily delete the entry with tie-break ``seq`` (must be live)."""
        self._cancelled.add(seq)
        self.size -= 1

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapQueue(size={self.size}, frontier={self.frontier})"


class CalendarQueue:
    """Bucketed event queue with O(1) amortized push/pop (see module doc).

    Invariant: whenever the queue is non-empty, ``_cur[_pos:]`` is the
    sorted, un-consumed remainder of the earliest occupied bucket and
    ``frontier == _cur[_pos][0]``.  ``_advance`` restores the invariant
    after the current bucket drains by sorting the next occupied bucket
    (found through ``_idx_heap``, which may hold stale indices for
    buckets already merged — they are skipped).

    Pushes that sort at or before the current remainder's tail (same
    bucket, or an earlier-bucket time that became reachable only after
    the pop that emptied its bucket) are bisected directly into the
    remainder, which keeps pop order exactly ``(time, seq)``-sorted —
    bit-identical to :class:`HeapQueue` for any bucket width.
    """

    __slots__ = (
        "width",
        "_inv_width",
        "_buckets",
        "_idx_heap",
        "_cur",
        "_pos",
        "_cur_idx",
        "_cancelled",
        "frontier",
        "size",
    )

    def __init__(self, width: float = 1e-6) -> None:
        if not width > 0.0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        self.width = float(width)
        self._inv_width = 1.0 / self.width
        self._buckets: dict[int, list[tuple[float, int, int]]] = {}
        self._idx_heap: list[int] = []
        self._cur: list[tuple[float, int, int]] = []
        self._pos = 0
        self._cur_idx = -1
        self._cancelled: set[int] = set()
        self.frontier = inf
        self.size = 0

    def push(self, time: float, seq: int, rank: int) -> None:
        self.size += 1
        cur = self._cur
        pos = self._pos
        if pos < len(cur):
            idx = int(time * self._inv_width)
            if idx <= self._cur_idx:
                # Current (or already-passed) bucket: keep the remainder
                # sorted.  ``lo=pos`` skips the consumed prefix; entries
                # never sort before it because pushes are not in the past
                # of the last pop.
                insort(cur, (time, seq, rank), lo=pos)
                if time < self.frontier:
                    self.frontier = time
                return
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [(time, seq, rank)]
                heappush(self._idx_heap, idx)
            else:
                bucket.append((time, seq, rank))
            return
        # Queue was empty: stage the entry and rebuild the invariant.
        idx = int(time * self._inv_width)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(time, seq, rank)]
            heappush(self._idx_heap, idx)
        else:  # pragma: no cover - only via cancelled leftovers
            bucket.append((time, seq, rank))
        self._advance()

    def pop(self) -> tuple[float, int, int]:
        cancelled = self._cancelled
        while True:
            cur = self._cur
            pos = self._pos
            item = cur[pos]
            self._pos = pos + 1
            if self._pos >= len(cur):
                self._advance()
            else:
                self.frontier = cur[self._pos][0]
            if cancelled and item[1] in cancelled:
                cancelled.discard(item[1])
                continue
            self.size -= 1
            return item

    def cancel(self, seq: int) -> None:
        """Lazily delete the entry with tie-break ``seq`` (must be live)."""
        self._cancelled.add(seq)
        self.size -= 1

    def _advance(self) -> None:
        """Load the next occupied bucket as the sorted current remainder."""
        idx_heap = self._idx_heap
        buckets = self._buckets
        while idx_heap:
            idx = heappop(idx_heap)
            bucket = buckets.pop(idx, None)
            if not bucket:
                continue
            bucket.sort()
            self._cur = bucket
            self._pos = 0
            self._cur_idx = idx
            self.frontier = bucket[0][0]
            return
        self._cur = []
        self._pos = 0
        self.frontier = inf

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarQueue(width={self.width}, size={self.size}, "
            f"frontier={self.frontier})"
        )


def make_queue(kind: str, width: float = 1e-6):
    """Instantiate an event queue by kind name (see :data:`QUEUE_KINDS`)."""
    if kind == "calendar":
        return CalendarQueue(width=width)
    if kind == "heap":
        return HeapQueue()
    raise ValueError(
        f"unknown event queue {kind!r}; expected one of {QUEUE_KINDS}"
    )
