"""High-level facade: wire a machine, clocks, and an SPMD body together.

:class:`Simulation` is the main entry point of the substrate::

    from repro.cluster import jupiter
    from repro.simmpi import Simulation

    spec = jupiter()
    sim = Simulation(machine=spec.machine(8, 4), network=spec.network(),
                     seed=42)

    def main(ctx, comm):
        total = yield from comm.allreduce(ctx.rank)
        return total

    result = sim.run(main)
    assert all(v == sum(range(32)) for v in result.values)

Every rank executes ``main(ctx, comm)`` (a generator function), receiving
its :class:`~repro.simmpi.process.ProcessContext` and a world
:class:`~repro.simmpi.comm.Communicator`.  The returned
:class:`SimulationResult` carries the per-rank return values plus handles
for ground-truth inspection (hardware clocks, true offsets) that the
accuracy experiments use for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

from repro.check.config import (
    active_check_mode,
    append_report,
    check_report_dir,
)
from repro.check.sanitizer import CheckReport, SanitizerSink, TeeSink
from repro.cluster.topology import Machine
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, apply_clock_faults
from repro.faults.schedule import FaultSchedule
from repro.obs.events import EventSink, get_default_sink
from repro.obs.metrics import MetricsRegistry, get_default_metrics
from repro.obs.timeseries import TimeSeriesBank, get_default_timeseries
from repro.prof.core import Profiler, get_default_profiler
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import Engine
from repro.simmpi.network import NetworkModel
from repro.simmpi.process import ProcessContext
from repro.simtime.hardware import HardwareClock
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec, make_clock


@dataclass
class SimulationResult:
    """Outcome of one simulated MPI job."""

    #: Per-rank return values of the SPMD body.
    values: list[Any]
    #: Total number of point-to-point messages delivered.
    messages: int
    #: Ground-truth hardware clock of each rank.
    clocks: list[HardwareClock]
    #: The machine the job ran on.
    machine: Machine
    #: Engine counter snapshot (messages/bytes delivered, stalls, ...).
    engine_stats: dict[str, int] = field(default_factory=dict)
    #: The event sink the job ran with, if any (holds recorded events).
    sink: EventSink | None = None
    #: The metrics registry the job ran with, if any.
    metrics: MetricsRegistry | None = None
    #: The clock-health telemetry bank the job ran with, if any.
    timeseries: TimeSeriesBank | None = None
    #: The fault schedule the job ran under, if any.
    faults: FaultSchedule | None = None
    #: Sanitizer report when the job ran with checking enabled.
    check_report: CheckReport | None = None

    def true_offset(self, rank: int, ref_rank: int, true_time: float) -> float:
        """Ground-truth clock offset ``rank - ref_rank`` at a true time."""
        return self.clocks[rank].offset_to(self.clocks[ref_rank], true_time)


MainFn = Callable[[ProcessContext, Communicator], Generator]


class Simulation:
    """One simulated ``mpirun``: machine + network + clocks + SPMD body."""

    def __init__(
        self,
        machine: Machine,
        network: NetworkModel,
        time_source: TimeSourceSpec = CLOCK_GETTIME,
        seed: int | np.random.SeedSequence = 0,
        clocks_per: str = "node",
        poll_interval: float = 0.1e-6,
        max_true_time: float = 1e7,
        fabric=None,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        timeseries: TimeSeriesBank | None = None,
        faults: FaultSchedule | None = None,
        injector: FaultInjector | None = None,
        rng_pool_chunk: int | None = None,
        check: str | None = None,
        profiler: Profiler | None = None,
        event_queue: str = "calendar",
        bucket_width: float | None = None,
        delay_mode: str = "scalar",
    ) -> None:
        """Set up the job.

        ``clocks_per`` selects the time-source domain: ``"node"`` (default;
        all cores of a node share one clock — the common case the paper's
        ClockPropSync exploits), ``"socket"``, or ``"core"`` (every rank has
        an independent clock; makes ClockPropSync semantically *incorrect*,
        which the H3HCA tests exercise).

        ``fabric`` optionally prices node pairs with topology-dependent
        extra latency (see :mod:`repro.cluster.fabric`; e.g. a
        :class:`~repro.cluster.fabric.TorusFabric` for Titan's Gemini).

        ``sink``/``metrics``/``timeseries`` attach observability (see
        :mod:`repro.obs`); when omitted, the process-wide defaults
        installed via ``repro.obs.set_default_sink`` /
        ``set_default_metrics`` / ``set_default_timeseries`` apply.
        Observation is passive — results are bit-identical either way.

        ``faults`` injects a scheduled disturbance scenario (see
        :mod:`repro.faults`): clock faults wrap the affected node clocks
        at construction; network/compute faults are applied by the
        engine at their exact virtual times.  Deterministic per seed.

        ``injector`` overrides the engine-side injector built from
        ``faults`` — the adversarial scenario layer
        (:mod:`repro.scenarios`) passes a subclass here that adds delay
        attacks, byzantine payload tampering, and congestion queueing on
        top of the plain fault hooks.  When given, it is used as-is
        (``faults`` still wraps clocks and is validated).

        ``seed`` may be a plain integer or a ``numpy.random.SeedSequence``
        (e.g. a child spawned by the parallel campaign executor); engine
        and clock streams are derived from it identically either way.

        ``rng_pool_chunk`` sizes the engine's batched uniform-draw pools
        (default: :data:`repro.simmpi.rngpool.DEFAULT_CHUNK`).  It is a
        pure performance knob — results are identical for every chunk
        size, which ``tests/parallel`` pins.

        ``check`` attaches the simulation sanitizer (see
        :mod:`repro.check`): ``"strict"`` raises
        :class:`~repro.errors.InvariantViolation` at the first broken
        engine invariant, ``"report"`` accumulates them into
        ``SimulationResult.check_report``.  When omitted, the
        process-wide mode (``REPRO_CHECK`` / ``repro.check.checking``)
        applies; checking is passive — results are bit-identical with
        it on or off.

        ``profiler`` attaches the wall-time self-profiler (see
        :mod:`repro.prof`); when omitted, the process-wide default
        installed via ``repro.prof.set_default_profiler`` applies.
        Profiling only reads the host clock, so profiled runs are
        bit-identical to unprofiled ones.

        ``event_queue`` picks the engine's pending-event kernel
        (``"calendar"`` — default, O(1) amortized bucket queue — or
        ``"heap"``, the legacy binary heap) and ``bucket_width`` sizes
        the calendar buckets (None = auto).  Both are pure performance
        knobs: every kind/width pops events in the same order, so
        results are bit-identical (the kernel-equivalence suite pins
        this).  ``delay_mode="burst"`` vectorizes per-message delay
        draws; it is deterministic per seed but consumes the uniform
        stream in a different order than the default ``"scalar"`` path,
        so it changes results and carries its own goldens.
        """
        if clocks_per not in ("node", "socket", "core"):
            raise SimulationError(
                f"clocks_per must be node/socket/core, got {clocks_per!r}"
            )
        self.machine = machine
        self.network = network
        self.time_source = time_source
        self.seed = seed
        self.clocks_per = clocks_per
        self.poll_interval = poll_interval
        self.max_true_time = max_true_time

        seedseq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        engine_seed, clock_seed = seedseq.spawn(2)
        self.fabric = fabric
        self.sink = sink if sink is not None else get_default_sink()
        self.metrics = (
            metrics if metrics is not None else get_default_metrics()
        )
        self.timeseries = (
            timeseries
            if timeseries is not None
            else get_default_timeseries()
        )
        self.profiler = (
            profiler if profiler is not None else get_default_profiler()
        )
        self.faults = faults
        if faults is not None:
            # Reject schedules that cannot act on this job: faults
            # targeting ranks/nodes that do not exist, or starting past
            # the hard simulation horizon.
            faults.validate(
                num_ranks=machine.num_ranks,
                num_nodes=machine.num_nodes,
                horizon=self.max_true_time,
            )
        if injector is None:
            injector = (
                FaultInjector(faults, node_of=machine.node_of)
                if faults is not None and len(faults)
                else None
            )
        self.checker: SanitizerSink | None = None
        mode = check if check is not None else active_check_mode()
        if mode:
            self.checker = SanitizerSink(
                mode=mode,
                label=f"{machine.name}[{machine.num_ranks} ranks]",
            )
            engine_sink = (
                TeeSink(self.checker, self.sink)
                if self.sink is not None
                else self.checker
            )
        else:
            engine_sink = self.sink
        self.engine = Engine(
            network=network,
            level_of=machine.level_between,
            seed=engine_seed,
            max_true_time=max_true_time,
            node_of=machine.node_of,
            extra_node_latency=(
                fabric.extra_latency if fabric is not None else None
            ),
            sink=engine_sink,
            metrics=self.metrics,
            timeseries=self.timeseries,
            injector=injector,
            profiler=self.profiler,
            event_queue=event_queue,
            bucket_width=bucket_width,
            delay_mode=delay_mode,
            **(
                {"rng_pool_chunk": rng_pool_chunk}
                if rng_pool_chunk is not None
                else {}
            ),
        )
        clock_rng = np.random.default_rng(clock_seed)
        # One clock per time-source domain; ranks in a domain share it.
        self._domain_clocks: dict[tuple, HardwareClock] = {}
        self.clocks: list[HardwareClock] = []
        self.contexts: list[ProcessContext] = []
        #: World rank tuple shared by every world() communicator (one
        #: allocation instead of one per rank — O(p²) bytes otherwise).
        self._world_ranks = tuple(range(machine.num_ranks))
        self.engine.add_processes(machine.num_ranks)
        for rank in range(machine.num_ranks):
            pl = machine.placement(rank)
            key = self._domain_key(pl)
            if key not in self._domain_clocks:
                clock = make_clock(time_source, clock_rng)
                if faults is not None and len(faults):
                    # Clock faults wrap the fresh (unread) domain clock;
                    # ranks of a domain still share one clock object.
                    clock = apply_clock_faults(clock, faults, pl.node)
                self._domain_clocks[key] = clock
            clock = self._domain_clocks[key]
            self.clocks.append(clock)
            self.contexts.append(
                ProcessContext(
                    engine=self.engine,
                    rank=rank,
                    hardware_clock=clock,
                    node=pl.node,
                    socket=pl.socket,
                    core=pl.core,
                    poll_interval=poll_interval,
                )
            )

    def _domain_key(self, placement) -> tuple:
        if self.clocks_per == "node":
            return (placement.node,)
        if self.clocks_per == "socket":
            return (placement.node, placement.socket)
        return (placement.node, placement.socket, placement.core)

    def shared_time_source(self, ranks) -> bool:
        """Ground-truth oracle: do all ``ranks`` share one hardware clock?

        Plays the role of ``clock_getcpuclockid`` checks on a real system;
        ClockPropSync is only semantically valid when this holds.
        """
        clocks = {id(self.clocks[r]) for r in ranks}
        return len(clocks) == 1

    def world(self, rank: int) -> Communicator:
        """A fresh MPI_COMM_WORLD handle for ``rank``."""
        return Communicator(
            self.contexts[rank],
            self._world_ranks,
            comm_id=0,
            comm_rank=rank,
        )

    def _span_recorder(self):
        """The attached span recorder, if one is (tee'd) in the sink.

        Duck-typed on ``open_edge_count`` so the check layer needn't
        import the obs layer; used to cross-validate the recorder's
        open-edge count against the sanitizer at finalize time.
        """
        sink = self.sink
        candidates = getattr(sink, "parts", None)
        if candidates is None:
            candidates = (sink,)
        for part in candidates:
            if hasattr(part, "open_edge_count"):
                return part
        return None

    def run(self, main: MainFn) -> SimulationResult:
        """Execute ``main(ctx, world)`` on every rank to completion."""
        prof = self.profiler
        start = prof.push("sim.run") if prof is not None else 0
        try:
            for rank in range(self.machine.num_ranks):
                ctx = self.contexts[rank]
                gen = main(ctx, self.world(rank))
                self.engine.bind(rank, gen)
            values = self.engine.run()
        finally:
            if prof is not None:
                prof.pop(start)
        report: CheckReport | None = None
        if self.checker is not None:
            start = prof.push("check.finalize") if prof is not None else 0
            report = self.checker.finalize(
                self.engine, spans=self._span_recorder()
            )
            if self.checker.mode == "report":
                out_dir = check_report_dir()
                if out_dir is not None:
                    append_report(report, out_dir)
            if prof is not None:
                prof.pop(start)
        return SimulationResult(
            values=values,
            messages=self.engine.messages_delivered,
            clocks=self.clocks,
            machine=self.machine,
            engine_stats=self.engine.stats(),
            sink=self.sink,
            metrics=self.metrics,
            timeseries=self.timeseries,
            faults=self.faults,
            check_report=report,
        )
