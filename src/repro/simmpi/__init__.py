"""Discrete-event MPI substrate.

This subpackage is a deterministic simulator of an MPI library running on a
cluster: processes are Python generators scheduled by an event loop
(:mod:`repro.simmpi.engine`), point-to-point messages travel through a
LogGP-flavoured network model (:mod:`repro.simmpi.network`), and collective
operations are implemented *from* point-to-point messages with the same
communication structure as the algorithm variants found in Open MPI
(:mod:`repro.simmpi.collectives`), so algorithm-dependent effects such as
barrier-exit imbalance emerge from the simulation instead of being assumed.

The public entry point is :class:`repro.simmpi.simulation.Simulation`, which
wires a machine model, per-node hardware clocks, and an SPMD ``main(ctx)``
function into a runnable simulated MPI job.
"""

from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.network import Level, LinkParams, NetworkModel
from repro.simmpi.engine import Engine
from repro.simmpi.process import ProcessContext
from repro.simmpi.comm import Communicator, COMM_TYPE_SHARED, COMM_TYPE_SOCKET
from repro.simmpi.simulation import Simulation, SimulationResult

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Level",
    "LinkParams",
    "NetworkModel",
    "Engine",
    "ProcessContext",
    "Communicator",
    "COMM_TYPE_SHARED",
    "COMM_TYPE_SOCKET",
    "Simulation",
    "SimulationResult",
]
