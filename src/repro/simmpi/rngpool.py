"""Chunked uniform-variate pools for the engine's delay draws.

The discrete-event hot path consumes two to four random variates per
simulated message (jitter, outlier trigger, outlier magnitude, congestion
noise).  Drawing them one scalar ``numpy`` call at a time dominates the
per-message cost: each ``Generator.exponential()``/``random()`` call pays
several hundred nanoseconds of argument marshalling before any bits are
generated.

:class:`UniformPool` amortizes that overhead by pre-drawing uniform
variates in chunks (``rng.random(chunk)``) and handing them out by
cursor.  The key property that keeps simulations bit-for-bit reproducible
is that numpy fills an array request from the *same* bit stream, in the
same order, as the equivalent sequence of scalar calls::

    default_rng(s).random(n)[i] == i-th of n default_rng(s).random() calls

so the chunk size is a pure performance knob: any two pools over
generators with the same seed produce the same variate sequence
regardless of chunking (``tests/simmpi/test_rngpool.py`` pins this).

All *derived* variates (exponential jitter, outlier triggers) are
computed from these uniforms by explicit inverse-CDF transforms in
:mod:`repro.simmpi.network` rather than by numpy's ziggurat samplers.
The ziggurat consumes a data-dependent number of raw draws per variate,
which would make chunked refills diverge from scalar consumption; the
inverse CDF consumes exactly one uniform per variate, which is what makes
pool chunking invisible to results.
"""

from __future__ import annotations

import numpy as np

#: Default variates per refill.  Large enough to amortize the numpy call
#: overhead across hundreds of messages, small enough that short runs do
#: not waste noticeable work on unconsumed tail draws.
DEFAULT_CHUNK = 1024


class UniformPool:
    """Cursor over chunked ``rng.random()`` draws (see module docstring).

    ``next()`` returns the same float sequence as repeated scalar
    ``rng.random()`` calls on a generator with the same seed, for *any*
    chunk size.  The buffer is a plain Python list so the hot path pays
    one list index instead of a numpy scalar extraction per draw.
    """

    __slots__ = ("rng", "chunk", "_buf", "_idx")

    def __init__(
        self, rng: np.random.Generator, chunk: int = DEFAULT_CHUNK
    ) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.rng = rng
        self.chunk = int(chunk)
        self._buf: list[float] = []
        self._idx = 0

    def next(self) -> float:
        """The next uniform variate in [0, 1)."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            buf = self._buf = self.rng.random(self.chunk).tolist()
            idx = 0
        self._idx = idx + 1
        return buf[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformPool(chunk={self.chunk}, "
            f"buffered={len(self._buf) - self._idx})"
        )
