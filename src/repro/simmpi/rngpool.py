"""Chunked uniform-variate pools for the engine's delay draws.

The discrete-event hot path consumes two to four random variates per
simulated message (jitter, outlier trigger, outlier magnitude, congestion
noise).  Drawing them one scalar ``numpy`` call at a time dominates the
per-message cost: each ``Generator.exponential()``/``random()`` call pays
several hundred nanoseconds of argument marshalling before any bits are
generated.

:class:`UniformPool` amortizes that overhead by pre-drawing uniform
variates in chunks (``rng.random(chunk)``) and handing them out by
cursor.  The key property that keeps simulations bit-for-bit reproducible
is that numpy fills an array request from the *same* bit stream, in the
same order, as the equivalent sequence of scalar calls::

    default_rng(s).random(n)[i] == i-th of n default_rng(s).random() calls

so the chunk size is a pure performance knob: any two pools over
generators with the same seed produce the same variate sequence
regardless of chunking (``tests/simmpi/test_rngpool.py`` pins this).

Refills *ramp*: the first refill draws :data:`RAMP_START` variates and
each subsequent one doubles until the configured chunk cap.  Rank-scaled
workloads hold thousands of pools that each consume only a few dozen
variates (one sync round's worth); ramping bounds the per-pool over-draw
to ~2× its consumption instead of a fixed 1024-variate block.  By the
array-fill property above, the ramp schedule — like the cap — cannot
change results.

All *derived* variates (exponential jitter, outlier triggers) are
computed from these uniforms by explicit inverse-CDF transforms in
:mod:`repro.simmpi.network` rather than by numpy's ziggurat samplers.
The ziggurat consumes a data-dependent number of raw draws per variate,
which would make chunked refills diverge from scalar consumption; the
inverse CDF consumes exactly one uniform per variate, which is what makes
pool chunking invisible to results.
"""

from __future__ import annotations

import numpy as np

#: Default refill cap, in variates.  Large enough to amortize the numpy
#: call overhead across hundreds of messages once a pool is warm.
DEFAULT_CHUNK = 1024

#: First-refill size; refills double from here up to the pool's cap.
RAMP_START = 64


class UniformPool:
    """Cursor over chunked ``rng.random()`` draws (see module docstring).

    ``next()`` returns the same float sequence as repeated scalar
    ``rng.random()`` calls on a generator with the same seed, for *any*
    chunk cap and ramp schedule.  The buffer is a plain Python list so the
    hot path pays one list index instead of a numpy scalar extraction per
    draw.

    ``take(n)`` hands out the next ``n`` variates of the same stream as a
    numpy array (the burst-mode refill path).  Mixing ``take`` and
    ``next`` is deterministic, but the *block structure* of draws from
    the underlying generator then depends on the call sequence — which is
    exactly why burst delay sampling is gated behind an explicit engine
    option rather than on by default.
    """

    __slots__ = ("rng", "chunk", "_buf", "_idx", "_next_len")

    def __init__(
        self, rng: np.random.Generator, chunk: int = DEFAULT_CHUNK
    ) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.rng = rng
        self.chunk = int(chunk)
        self._buf: list[float] = []
        self._idx = 0
        self._next_len = min(RAMP_START, self.chunk)

    def next(self) -> float:
        """The next uniform variate in [0, 1)."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            n = self._next_len
            if n < self.chunk:
                self._next_len = min(n << 1, self.chunk)
            buf = self._buf = self.rng.random(n).tolist()
            idx = 0
        self._idx = idx + 1
        return buf[idx]

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` variates of the stream, as a numpy array.

        Consumes any buffered remainder first, then draws the shortfall
        directly (no over-draw): the concatenation is the same variate
        sequence ``n`` calls to :meth:`next` would have returned, though
        the underlying generator is exercised with different block sizes.
        """
        if n < 0:
            raise ValueError("take() needs n >= 0")
        buf = self._buf
        idx = self._idx
        avail = len(buf) - idx
        if avail >= n:
            self._idx = idx + n
            return np.asarray(buf[idx:idx + n])
        self._idx = len(buf)
        fresh = self.rng.random(n - avail)
        if avail == 0:
            return fresh
        return np.concatenate([np.asarray(buf[idx:]), fresh])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformPool(chunk={self.chunk}, "
            f"buffered={len(self._buf) - self._idx})"
        )
