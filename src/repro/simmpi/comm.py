"""Communicators: rank translation, tag spaces, splitting.

A :class:`Communicator` is a per-process view of a process group, exactly
like an ``MPI_Comm`` handle.  Ranks used in its API are *communicator
ranks*; translation to global (engine) ranks happens internally.

Tag isolation: every communicator owns a disjoint tag window of width
``TAG_STRIDE``; user tags occupy the lower half and collective operations
the upper half, keyed by a per-communicator collective sequence number.
Communicator ids are allocated by a per-process counter — since
communicator creation is collective and SPMD programs create communicators
in the same order on every process, the ids agree across the group (the
same argument MPI implementations use for context ids).

``split``/``split_type`` are implemented as real collectives (an allgather
of (color, key) pairs over the ring algorithm) so that communicator
creation has a realistic, payload-dependent cost — the paper deliberately
includes this cost when measuring the hierarchical schemes (Section IV-E).
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Sequence

from repro.errors import CommunicatorError
from repro.obs.events import CollectiveEnter, CollectiveExit
from repro.simmpi.engine import SendRecvCmd
from repro.simmpi.message import Message
from repro.simmpi.process import ProcessContext

#: Width of each communicator's tag window.
TAG_STRIDE = 1 << 20
#: User tags must be below this bound; collective tags sit above it.
MAX_USER_TAG = 1 << 19

#: ``MPI_COMM_TYPE_SHARED``: processes on the same compute node.
COMM_TYPE_SHARED = "shared"
#: Extension (hwloc-style): processes on the same socket.
COMM_TYPE_SOCKET = "socket"


class Communicator:
    """Per-process handle to an ordered group of global ranks."""

    def __init__(
        self,
        ctx: ProcessContext,
        ranks: Sequence[int],
        comm_id: int,
        comm_rank: int | None = None,
    ) -> None:
        """``comm_rank``, when given, is the caller's pre-computed index
        into ``ranks``; passing it skips the O(|ranks|) membership scan,
        which turns building p world communicators from O(p²) into O(p)
        (the :meth:`Simulation.world` fast path at thousands of ranks).
        """
        self.ctx = ctx
        self._ranks = tuple(ranks)
        self.comm_id = comm_id
        if comm_rank is None:
            if ctx.rank not in ranks:
                raise CommunicatorError(
                    f"process {ctx.rank} is not a member of group {ranks}"
                )
            comm_rank = self._ranks.index(ctx.rank)
        elif self._ranks[comm_rank] != ctx.rank:
            raise CommunicatorError(
                f"comm_rank {comm_rank} does not map to process "
                f"{ctx.rank} in group"
            )
        self.rank = comm_rank
        self.size = len(self._ranks)
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # Rank/tag translation
    # ------------------------------------------------------------------
    def global_rank(self, comm_rank: int) -> int:
        """Translate a communicator rank to the engine's global rank."""
        if not 0 <= comm_rank < self.size:
            raise CommunicatorError(
                f"rank {comm_rank} out of range for size-{self.size} comm"
            )
        return self._ranks[comm_rank]

    def comm_rank_of(self, global_rank: int) -> int:
        """Translate a global rank back to this communicator (or raise)."""
        try:
            return self._ranks.index(global_rank)
        except ValueError:
            raise CommunicatorError(
                f"global rank {global_rank} not in communicator"
            ) from None

    @property
    def group(self) -> tuple[int, ...]:
        """The ordered tuple of member global ranks."""
        return self._ranks

    def _user_tag(self, tag: int) -> int:
        if not 0 <= tag < MAX_USER_TAG:
            raise CommunicatorError(f"user tag must be in [0, {MAX_USER_TAG})")
        return self.comm_id * TAG_STRIDE + tag

    def next_collective_tag(self) -> int:
        """Fresh tag for one collective call (consistent across members)."""
        tag = self.comm_id * TAG_STRIDE + MAX_USER_TAG + (
            self._coll_seq % MAX_USER_TAG
        )
        self._coll_seq += 1
        return tag

    # ------------------------------------------------------------------
    # Point-to-point in communicator-rank space
    # ------------------------------------------------------------------
    def send(self, dest: int, tag: int, payload: Any = None, size: int = 8):
        """Eager send to communicator rank ``dest`` with a user tag."""
        yield from self.ctx.send(
            self.global_rank(dest), self._user_tag(tag), payload, size
        )

    def ssend(self, dest: int, tag: int, payload: Any = None, size: int = 8):
        """Synchronous (rendezvous) send to communicator rank ``dest``."""
        yield from self.ctx.ssend(
            self.global_rank(dest), self._user_tag(tag), payload, size
        )

    def recv(self, source: int, tag: int) -> Generator[Any, Any, Message]:
        """Blocking receive from communicator rank ``source``."""
        msg = yield from self.ctx.recv(
            self.global_rank(source), self._user_tag(tag)
        )
        return msg

    def sendrecv(
        self,
        dest: int,
        send_tag: int,
        payload: Any = None,
        size: int = 8,
        source: int | None = None,
        recv_tag: int | None = None,
    ) -> Generator[Any, Any, Message]:
        """Send to ``dest`` then receive (defaults: same peer and tag).

        Yields the fused :class:`SendRecvCmd` directly rather than
        delegating through ``ctx.sendrecv``: the exchange is the hottest
        communication primitive (ring offset collection, recursive
        doubling), and each dropped generator frame is one fewer resume
        per message.  Bit-identical to the delegating form.
        """
        src = dest if source is None else source
        rtag = send_tag if recv_tag is None else recv_tag
        msg = yield SendRecvCmd(
            dest=self.global_rank(dest),
            tag=self._user_tag(send_tag),
            payload=payload,
            size=size,
            source=self.global_rank(src),
            recv_tag=self._user_tag(rtag),
        )
        return msg

    # ------------------------------------------------------------------
    # Raw p2p for collective implementations (tag already fully qualified)
    # ------------------------------------------------------------------
    def send_raw(self, dest: int, tag: int, payload: Any = None,
                 size: int = 8):
        """Send with a pre-qualified tag (collective-internal use)."""
        yield from self.ctx.send(self.global_rank(dest), tag, payload, size)

    def ssend_raw(self, dest: int, tag: int, payload: Any = None,
                  size: int = 8):
        """Synchronous send with a pre-qualified tag."""
        yield from self.ctx.ssend(self.global_rank(dest), tag, payload, size)

    def recv_raw(
        self, source: int | None, tag: int
    ) -> Generator[Any, Any, Message]:
        """Receive with a pre-qualified tag; ``source=None`` = ANY_SOURCE."""
        from repro.simmpi.message import ANY_SOURCE

        gsrc = ANY_SOURCE if source is None else self.global_rank(source)
        msg = yield from self.ctx.recv(gsrc, tag)
        return msg

    # ------------------------------------------------------------------
    # Collectives (delegating to the algorithm modules)
    # ------------------------------------------------------------------
    def _obs_enter(self, name: str) -> None:
        """Emit a CollectiveEnter to the engine's sink (no-op without one)."""
        sink = self.ctx.engine.sink
        if sink is not None:
            sink.emit(CollectiveEnter(
                time=self.ctx.now, rank=self.ctx.rank, name=name,
                comm_id=self.comm_id, comm_rank=self.rank,
                comm_size=self.size,
            ))

    def _obs_exit(self, name: str) -> None:
        """Emit the matching CollectiveExit (no-op without a sink)."""
        sink = self.ctx.engine.sink
        if sink is not None:
            sink.emit(CollectiveExit(
                time=self.ctx.now, rank=self.ctx.rank, name=name,
                comm_id=self.comm_id, comm_rank=self.rank,
                comm_size=self.size,
            ))

    def barrier(self, algorithm: str = "tree"):
        """MPI_Barrier with a named algorithm (see BARRIER_ALGORITHMS)."""
        from repro.simmpi.collectives.barrier import barrier as _barrier

        self._obs_enter("MPI_Barrier")
        yield from _barrier(self, algorithm=algorithm)
        self._obs_exit("MPI_Barrier")

    def bcast(self, value: Any = None, root: int = 0, size: int = 8,
              algorithm: str = "binomial"):
        """MPI_Bcast: every rank returns the root's value."""
        from repro.simmpi.collectives.bcast import bcast as _bcast

        self._obs_enter("MPI_Bcast")
        result = yield from _bcast(
            self, value, root=root, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Bcast")
        return result

    def reduce(self, value: Any, op=None, root: int = 0, size: int = 8,
               algorithm: str = "binomial"):
        """MPI_Reduce: root returns op-combined value, others None."""
        from repro.simmpi.collectives.reduce import reduce as _reduce

        self._obs_enter("MPI_Reduce")
        result = yield from _reduce(
            self, value, op=op, root=root, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Reduce")
        return result

    def allreduce(self, value: Any, op=None, size: int = 8,
                  algorithm: str = "recursive_doubling"):
        """MPI_Allreduce: every rank returns the op-combined value."""
        from repro.simmpi.collectives.allreduce import allreduce as _allreduce

        self._obs_enter("MPI_Allreduce")
        result = yield from _allreduce(
            self, value, op=op, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Allreduce")
        return result

    def gather(self, value: Any, root: int = 0, size: int = 8,
               algorithm: str = "linear"):
        """MPI_Gather: root returns the rank-ordered list, others None."""
        from repro.simmpi.collectives.gather import gather as _gather

        self._obs_enter("MPI_Gather")
        result = yield from _gather(
            self, value, root=root, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Gather")
        return result

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0,
                size: int = 8, algorithm: str = "linear"):
        """MPI_Scatter: every rank returns its block of root's values."""
        from repro.simmpi.collectives.scatter import scatter as _scatter

        self._obs_enter("MPI_Scatter")
        result = yield from _scatter(
            self, values, root=root, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Scatter")
        return result

    def allgather(self, value: Any, size: int = 8, algorithm: str = "ring"):
        """MPI_Allgather: every rank returns the rank-ordered list."""
        from repro.simmpi.collectives.allgather import allgather as _allgather

        self._obs_enter("MPI_Allgather")
        result = yield from _allgather(
            self, value, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Allgather")
        return result

    def alltoall(self, values: Sequence[Any], size: int = 8,
                 algorithm: str = "pairwise"):
        """MPI_Alltoall: exchange values[i] with rank i."""
        from repro.simmpi.collectives.alltoall import alltoall as _alltoall

        self._obs_enter("MPI_Alltoall")
        result = yield from _alltoall(
            self, values, size=size, algorithm=algorithm
        )
        self._obs_exit("MPI_Alltoall")
        return result

    # ------------------------------------------------------------------
    # Communicator construction
    # ------------------------------------------------------------------
    def _alloc_comm_id(self) -> int:
        counter = getattr(self.ctx, "_comm_id_counter", 1)
        self.ctx._comm_id_counter = counter + 1  # type: ignore[attr-defined]
        return counter

    def dup(self) -> Generator[Any, Any, "Communicator"]:
        """Collective duplicate (synchronizes via a barrier, like MPI)."""
        new_id = self._alloc_comm_id()
        yield from self.barrier(algorithm="tree")
        return Communicator(self.ctx, self._ranks, new_id)

    def split(
        self, color: Hashable, key: int | None = None
    ) -> Generator[Any, Any, "Communicator | None"]:
        """Collective split by ``color``; ``None`` color → no new comm.

        Implemented as a real allgather of (color, key) pairs so the cost of
        communicator creation appears in measured synchronization durations.
        """
        my_key = self.rank if key is None else key
        infos = yield from self.allgather((color, my_key), size=16)
        new_id = self._alloc_comm_id()
        if color is None:
            return None
        members = sorted(
            (info[1], r)
            for r, info in enumerate(infos)
            if info[0] == color
        )
        ranks = tuple(self._ranks[r] for _, r in members)
        return Communicator(self.ctx, ranks, new_id)

    def split_type(
        self, split_kind: str, key: int | None = None
    ) -> Generator[Any, Any, "Communicator | None"]:
        """``MPI_Comm_split_type``: group by shared node or socket."""
        if split_kind == COMM_TYPE_SHARED:
            color: Hashable = ("node", self.ctx.node)
        elif split_kind == COMM_TYPE_SOCKET:
            color = ("socket", self.ctx.node, self.ctx.socket)
        else:
            raise CommunicatorError(f"unknown split type {split_kind!r}")
        comm = yield from self.split(color, key)
        return comm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Communicator(id={self.comm_id}, rank={self.rank}/{self.size})"
        )
