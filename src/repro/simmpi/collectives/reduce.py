"""``MPI_Reduce`` algorithm variants: binomial tree and flat linear.

Reduction operators are plain Python callables ``op(a, b)``; they must be
associative (and, for the recursive/tree shapes, commutative — true for all
operators the paper's experiments use: sum, max, logical-or).
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import binomial_children, binomial_parent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _binomial(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Binomial-tree reduction toward ``root``."""
    rank, nprocs = comm.rank, comm.size
    relative = (rank - root) % nprocs
    acc = value
    # Children deliver their partial results before we forward to the parent;
    # receive deepest-subtree-first so partials are ready when needed.
    for child in reversed(binomial_children(relative, nprocs)):
        msg = yield from comm.recv_raw((child + root) % nprocs, tag)
        acc = op(acc, msg.payload)
    parent = binomial_parent(relative, nprocs)
    if parent is not None:
        yield from comm.send_raw((parent + root) % nprocs, tag, acc, size)
        return None
    return acc


def _linear(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int,
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """All ranks send to the root, which combines in rank order."""
    if comm.rank != root:
        yield from comm.send_raw(root, tag, value, size)
        return None
    acc = value
    for peer in range(comm.size):
        if peer == root:
            continue
        msg = yield from comm.recv_raw(peer, tag)
        acc = op(acc, msg.payload)
    return acc


REDUCE_ALGORITHMS = {
    "binomial": _binomial,
    "linear": _linear,
}


def reduce(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any] | None = None,
    root: int = 0,
    size: int = 8,
    algorithm: str = "binomial",
) -> Generator[Any, Any, Any]:
    """Reduce ``value`` to ``root``; root returns the result, others None."""
    if not 0 <= root < comm.size:
        raise CommunicatorError(f"invalid reduce root {root}")
    op = op or operator.add
    try:
        impl = REDUCE_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown reduce algorithm {algorithm!r}; "
            f"choose from {sorted(REDUCE_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, value, op, root, size, tag)
    return result
