"""Binomial-tree helpers shared by tree-shaped collectives."""

from __future__ import annotations


def highest_power_of_two_below(n: int) -> int:
    """Largest power of two <= n (n >= 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << (n.bit_length() - 1)


def binomial_recv_mask(relative_rank: int, size: int) -> int:
    """The mask at which ``relative_rank`` receives from its parent.

    Returns 0 for the root (relative rank 0).  The parent is
    ``relative_rank - mask``.
    """
    mask = 1
    while mask < size:
        if relative_rank & mask:
            return mask
        mask <<= 1
    return 0


def binomial_children(relative_rank: int, size: int) -> list[int]:
    """Relative ranks of the children in send order (largest subtree first).

    For the classic binomial broadcast, after receiving at ``recv_mask``, a
    process sends to ``relative_rank + mask`` for each ``mask`` strictly
    below its receive mask (or below ``size`` for the root), descending.
    """
    recv_mask = binomial_recv_mask(relative_rank, size)
    if recv_mask == 0:
        mask = highest_power_of_two_below(size) if size > 1 else 0
    else:
        mask = recv_mask >> 1
    children = []
    while mask > 0:
        child = relative_rank + mask
        if child < size:
            children.append(child)
        mask >>= 1
    return children


def binomial_parent(relative_rank: int, size: int) -> int | None:
    """Relative rank of the parent, or None for the root."""
    mask = binomial_recv_mask(relative_rank, size)
    if mask == 0:
        return None
    return relative_rank - mask


def binomial_depth(relative_rank: int, size: int) -> int:
    """Number of tree levels between ``relative_rank`` and the root.

    0 for the root; at most ``ceil(log2 size)`` for any rank.  Used by
    the causal tracing layer to annotate collective phases with their
    tree position and to bound expected critical-path depth.
    """
    depth = 0
    rank = relative_rank
    while True:
        parent = binomial_parent(rank, size)
        if parent is None:
            return depth
        depth += 1
        rank = parent
