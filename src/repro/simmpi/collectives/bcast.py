"""``MPI_Bcast`` algorithm variants: binomial tree and flat linear."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import binomial_children, binomial_parent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _binomial(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, Any]:
    """Classic binomial broadcast: O(log p) depth, each hop one message."""
    rank, nprocs = comm.rank, comm.size
    relative = (rank - root) % nprocs
    parent = binomial_parent(relative, nprocs)
    if parent is not None:
        msg = yield from comm.recv_raw((parent + root) % nprocs, tag)
        value = msg.payload
    for child in binomial_children(relative, nprocs):
        yield from comm.send_raw((child + root) % nprocs, tag, value, size)
    return value


def _linear(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, Any]:
    """Root sends to every rank individually (O(p) at the root)."""
    if comm.rank == root:
        for peer in range(comm.size):
            if peer != root:
                yield from comm.send_raw(peer, tag, value, size)
        return value
    msg = yield from comm.recv_raw(root, tag)
    return msg.payload


def _chain(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, Any]:
    """Pipeline chain: each rank forwards to the next (large messages)."""
    rank, nprocs = comm.rank, comm.size
    relative = (rank - root) % nprocs
    if relative > 0:
        prev = (rank - 1) % nprocs
        msg = yield from comm.recv_raw(prev, tag)
        value = msg.payload
    if relative < nprocs - 1:
        yield from comm.send_raw((rank + 1) % nprocs, tag, value, size)
    return value


def _scatter_allgather(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, Any]:
    """Van de Geijn bcast: binomial scatter of segments + ring allgather.

    Bandwidth-optimal for large payloads: each link carries ~2×size/p
    bytes instead of the full message.  Payload semantics: the value is
    logically split into ``p`` segments; each rank receives its segment
    during the scatter and the allgather reassembles the full value.
    """
    from repro.simmpi.collectives.allgather import allgather as _allgather
    from repro.simmpi.collectives.scatter import scatter as _scatter

    nprocs = comm.size
    if nprocs == 1:
        return value
    segment_size = max(1, size // nprocs)
    segments = (
        [(i, value) for i in range(nprocs)] if comm.rank == root else None
    )
    my_segment = yield from _scatter(
        comm, segments, root=root, size=segment_size, algorithm="binomial"
    )
    pieces = yield from _allgather(
        comm, my_segment, size=segment_size, algorithm="ring"
    )
    # Any piece carries the broadcast value (piece = (segment_idx, value)).
    return pieces[0][1]


BCAST_ALGORITHMS = {
    "binomial": _binomial,
    "linear": _linear,
    "chain": _chain,
    "scatter_allgather": _scatter_allgather,
}


def bcast(
    comm: "Communicator",
    value: Any = None,
    root: int = 0,
    size: int = 8,
    algorithm: str = "binomial",
) -> Generator[Any, Any, Any]:
    """Broadcast ``value`` from ``root``; every rank returns the value."""
    if not 0 <= root < comm.size:
        raise CommunicatorError(f"invalid bcast root {root}")
    try:
        impl = BCAST_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown bcast algorithm {algorithm!r}; "
            f"choose from {sorted(BCAST_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, value, root, size, tag)
    return result
