"""``MPI_Allreduce`` algorithm variants.

The paper's Figs. 7 and 9 measure ``MPI_Allreduce`` for payloads of
4–1024 B.  Open MPI's tuned component picks ``recursive_doubling`` for such
small messages; ``ring`` (reduce-scatter + allgather) and ``reduce_bcast``
are provided as the classic alternatives a tuner would compare.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import highest_power_of_two_below

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _recursive_doubling(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Pairwise exchange with the standard non-power-of-two fold."""
    rank, nprocs = comm.rank, comm.size
    if nprocs == 1:
        return value
    m = highest_power_of_two_below(nprocs)
    rem = nprocs - m
    acc = value
    if rank >= m:
        # Surplus ranks contribute their value, then wait for the result.
        yield from comm.send_raw(rank - m, tag, acc, size)
        msg = yield from comm.recv_raw(rank - m, tag)
        return msg.payload
    if rank < rem:
        msg = yield from comm.recv_raw(rank + m, tag)
        acc = op(acc, msg.payload)
    mask = 1
    while mask < m:
        partner = rank ^ mask
        yield from comm.send_raw(partner, tag, acc, size)
        msg = yield from comm.recv_raw(partner, tag)
        acc = op(acc, msg.payload)
        mask <<= 1
    if rank < rem:
        yield from comm.send_raw(rank + m, tag, acc, size)
    return acc


def _ring(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Reduce-scatter + allgather around a ring, ``size/p``-byte chunks.

    Chunk ``j`` logically holds the whole (scalar) payload; after the
    reduce-scatter phase rank ``r`` owns the fully reduced chunk
    ``(r + 1) % p``, and the allgather phase circulates the reduced chunks.
    """
    rank, nprocs = comm.rank, comm.size
    if nprocs == 1:
        return value
    right = (rank + 1) % nprocs
    left = (rank - 1) % nprocs
    chunk_bytes = max(1, size // nprocs)
    # partials[j]: accumulated value for chunk j as it passes through us.
    partials: dict[int, Any] = {rank: value}
    # Reduce-scatter: in step s we forward chunk (rank - s) mod p.
    for step in range(nprocs - 1):
        send_chunk = (rank - step) % nprocs
        yield from comm.send_raw(
            right, tag, (send_chunk, partials[send_chunk]), chunk_bytes
        )
        msg = yield from comm.recv_raw(left, tag)
        chunk, partial = msg.payload
        # The received chunk accumulates OUR value before moving on.
        partials[chunk] = op(partial, value)
    reduced_chunk = (rank + 1) % nprocs
    result = partials[reduced_chunk]
    # Allgather: circulate the reduced chunks; every rank sees the result.
    carry = (reduced_chunk, result)
    for _ in range(nprocs - 1):
        yield from comm.send_raw(right, tag, carry, chunk_bytes)
        msg = yield from comm.recv_raw(left, tag)
        carry = msg.payload
    return result


def _reduce_bcast(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Binomial reduce to rank 0 followed by binomial broadcast."""
    from repro.simmpi.collectives.bcast import bcast as _bcast
    from repro.simmpi.collectives.reduce import reduce as _reduce

    total = yield from _reduce(
        comm, value, op=op, root=0, size=size, algorithm="binomial"
    )
    result = yield from _bcast(
        comm, total, root=0, size=size, algorithm="binomial"
    )
    return result


def _rabenseifner(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any],
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    allgather.  Bandwidth-optimal for large payloads: message sizes halve
    (then double) each round instead of staying full-size.

    Payload semantics follow the scalar-chunk convention of :func:`_ring`:
    every exchanged block logically covers the whole scalar, so partials
    combine with ``op`` directly.
    """
    rank, nprocs = comm.rank, comm.size
    if nprocs == 1:
        return value
    m = highest_power_of_two_below(nprocs)
    rem = nprocs - m
    acc = value
    # Fold the non-power-of-two remainder into the core, as in _recursive_doubling.
    if rank >= m:
        yield from comm.send_raw(rank - m, tag, acc, size)
        msg = yield from comm.recv_raw(rank - m, tag)
        return msg.payload
    if rank < rem:
        msg = yield from comm.recv_raw(rank + m, tag)
        acc = op(acc, msg.payload)
    # Reduce-scatter phase: distance doubles, message size halves.
    mask = 1
    block = size
    while mask < m:
        partner = rank ^ mask
        block = max(1, block // 2)
        yield from comm.send_raw(partner, tag, acc, block)
        msg = yield from comm.recv_raw(partner, tag)
        acc = op(acc, msg.payload)
        mask <<= 1
    # Allgather phase: distance halves, message size doubles.
    mask = m >> 1
    while mask > 0:
        partner = rank ^ mask
        yield from comm.send_raw(partner, tag, acc, block)
        msg = yield from comm.recv_raw(partner, tag)
        # Blocks are fully reduced by now; keep ours (scalar convention:
        # both sides hold the same total).
        block = min(size, block * 2)
        mask >>= 1
    if rank < rem:
        yield from comm.send_raw(rank + m, tag, acc, size)
    return acc


ALLREDUCE_ALGORITHMS = {
    "recursive_doubling": _recursive_doubling,
    "ring": _ring,
    "reduce_bcast": _reduce_bcast,
    "rabenseifner": _rabenseifner,
}


def allreduce(
    comm: "Communicator",
    value: Any,
    op: Callable[[Any, Any], Any] | None = None,
    size: int = 8,
    algorithm: str = "recursive_doubling",
) -> Generator[Any, Any, Any]:
    """All-reduce ``value`` over ``comm``; every rank returns the result."""
    op = op or operator.add
    try:
        impl = ALLREDUCE_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, value, op, size, tag)
    return result
