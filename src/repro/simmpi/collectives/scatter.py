"""``MPI_Scatter`` algorithm variants: linear and binomial.

HCA/HCA2 distribute the learned clock models with ``MPI_Scatter`` (Fig. 1a
in the paper); this module provides that operation for the substrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import binomial_children, binomial_parent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _linear(
    comm: "Communicator",
    values: Sequence[Any] | None,
    root: int,
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Root sends each rank its block directly."""
    if comm.rank == root:
        assert values is not None
        for peer in range(comm.size):
            if peer != root:
                yield from comm.send_raw(peer, tag, values[peer], size)
        return values[root]
    msg = yield from comm.recv_raw(root, tag)
    return msg.payload


def _binomial(
    comm: "Communicator",
    values: Sequence[Any] | None,
    root: int,
    size: int,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Scatter down a binomial tree; inner nodes split forwarded blocks."""
    rank, nprocs = comm.rank, comm.size
    relative = (rank - root) % nprocs

    if relative == 0:
        assert values is not None
        block: dict[int, Any] = {
            ((r + root) % nprocs): values[(r + root) % nprocs]
            for r in range(nprocs)
        }
    else:
        parent = binomial_parent(relative, nprocs)
        assert parent is not None
        msg = yield from comm.recv_raw((parent + root) % nprocs, tag)
        block = msg.payload

    for child in binomial_children(relative, nprocs):
        # The subtree rooted at relative rank c = relative + m (m a power of
        # two) covers relative ranks c .. c + m - 1.
        mask = child - relative
        sub = {}
        for rel in range(child, min(child + mask, nprocs)):
            key = (rel + root) % nprocs
            if key in block:
                sub[key] = block.pop(key)
        yield from comm.send_raw(
            (child + root) % nprocs, tag, sub, size * max(1, len(sub))
        )
    return block[rank]


SCATTER_ALGORITHMS = {
    "linear": _linear,
    "binomial": _binomial,
}


def scatter(
    comm: "Communicator",
    values: Sequence[Any] | None = None,
    root: int = 0,
    size: int = 8,
    algorithm: str = "linear",
) -> Generator[Any, Any, Any]:
    """Scatter ``values`` (rank-indexed, root only) to all ranks."""
    if not 0 <= root < comm.size:
        raise CommunicatorError(f"invalid scatter root {root}")
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise CommunicatorError(
                "scatter root must supply one value per rank"
            )
    try:
        impl = SCATTER_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown scatter algorithm {algorithm!r}; "
            f"choose from {sorted(SCATTER_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, values, root, size, tag)
    return result
