"""``MPI_Allgather`` algorithm variants: ring and Bruck.

Communicator splitting uses allgather to exchange (color, key) pairs, so
this collective determines the communicator-creation overhead the paper
includes in the hierarchical schemes' measured durations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import CommunicatorError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _ring(
    comm: "Communicator", value: Any, size: int, tag: int
) -> Generator[Any, Any, list[Any]]:
    """p-1 steps; in each step pass the most recently received block right."""
    rank, nprocs = comm.rank, comm.size
    out: list[Any] = [None] * nprocs
    out[rank] = value
    if nprocs == 1:
        return out
    right = (rank + 1) % nprocs
    left = (rank - 1) % nprocs
    carry = (rank, value)
    for _ in range(nprocs - 1):
        yield from comm.send_raw(right, tag, carry, size)
        msg = yield from comm.recv_raw(left, tag)
        carry = msg.payload
        out[carry[0]] = carry[1]
    return out


def _bruck(
    comm: "Communicator", value: Any, size: int, tag: int
) -> Generator[Any, Any, list[Any]]:
    """ceil(log2 p) rounds with doubling block sizes."""
    rank, nprocs = comm.rank, comm.size
    out: dict[int, Any] = {rank: value}
    if nprocs == 1:
        return [value]
    dist = 1
    while dist < nprocs:
        to = (rank - dist) % nprocs
        frm = (rank + dist) % nprocs
        yield from comm.send_raw(to, tag, dict(out), size * len(out))
        msg = yield from comm.recv_raw(frm, tag)
        out.update(msg.payload)
        dist <<= 1
    return [out[r] for r in range(nprocs)]


def _neighbor_exchange(
    comm: "Communicator", value: Any, size: int, tag: int
) -> Generator[Any, Any, list[Any]]:
    """Open MPI's neighbor-exchange allgather (even process counts).

    p/2 rounds of pairwise exchanges with alternating left/right
    neighbours, each carrying a growing block (two entries per round after
    the first).  Falls back to the ring for odd process counts, as the
    real implementation does.
    """
    rank, nprocs = comm.rank, comm.size
    if nprocs == 1:
        return [value]
    if nprocs % 2 == 1:
        result = yield from _ring(comm, value, size, tag)
        return result
    out: dict[int, Any] = {rank: value}
    even = rank % 2 == 0
    right = (rank + 1) % nprocs
    left = (rank - 1) % nprocs
    # Round 0: exchange own value with the fixed partner.
    partner = right if even else left
    yield from comm.send_raw(partner, tag, dict(out), size)
    msg = yield from comm.recv_raw(partner, tag)
    out.update(msg.payload)
    # Remaining p/2 - 1 rounds alternate the other neighbour, forwarding
    # the two most recently learned entries.
    recent = dict(out)
    for step in range(nprocs // 2 - 1):
        if (step % 2 == 0) == even:
            partner = left
        else:
            partner = right
        yield from comm.send_raw(
            partner, tag, recent, size * max(1, len(recent))
        )
        msg = yield from comm.recv_raw(partner, tag)
        recent = msg.payload
        out.update(recent)
    return [out[r] for r in range(nprocs)]


ALLGATHER_ALGORITHMS = {
    "ring": _ring,
    "bruck": _bruck,
    "neighbor_exchange": _neighbor_exchange,
}


def allgather(
    comm: "Communicator",
    value: Any,
    size: int = 8,
    algorithm: str = "ring",
) -> Generator[Any, Any, list[Any]]:
    """Gather one value per rank; every rank returns the rank-ordered list."""
    try:
        impl = ALLGATHER_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown allgather algorithm {algorithm!r}; "
            f"choose from {sorted(ALLGATHER_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, value, size, tag)
    return result
