"""``MPI_Gather`` algorithm variants: linear and binomial."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import binomial_children, binomial_parent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _linear(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, list[Any] | None]:
    """Every rank sends directly to the root."""
    if comm.rank != root:
        yield from comm.send_raw(root, tag, value, size)
        return None
    out: list[Any] = [None] * comm.size
    out[root] = value
    for peer in range(comm.size):
        if peer == root:
            continue
        msg = yield from comm.recv_raw(peer, tag)
        out[peer] = msg.payload
    return out


def _binomial(
    comm: "Communicator", value: Any, root: int, size: int, tag: int
) -> Generator[Any, Any, list[Any] | None]:
    """Gather up a binomial tree; inner nodes forward growing blocks."""
    rank, nprocs = comm.rank, comm.size
    relative = (rank - root) % nprocs
    # collected: {comm_rank: value} for our whole subtree.
    collected: dict[int, Any] = {rank: value}
    for child in reversed(binomial_children(relative, nprocs)):
        msg = yield from comm.recv_raw((child + root) % nprocs, tag)
        collected.update(msg.payload)
    parent = binomial_parent(relative, nprocs)
    if parent is not None:
        yield from comm.send_raw(
            (parent + root) % nprocs, tag, collected, size * len(collected)
        )
        return None
    out: list[Any] = [None] * nprocs
    for r, v in collected.items():
        out[r] = v
    return out


GATHER_ALGORITHMS = {
    "linear": _linear,
    "binomial": _binomial,
}


def gather(
    comm: "Communicator",
    value: Any,
    root: int = 0,
    size: int = 8,
    algorithm: str = "linear",
) -> Generator[Any, Any, list[Any] | None]:
    """Gather one value per rank to ``root`` (root gets the rank-ordered list)."""
    if not 0 <= root < comm.size:
        raise CommunicatorError(f"invalid gather root {root}")
    try:
        impl = GATHER_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown gather algorithm {algorithm!r}; "
            f"choose from {sorted(GATHER_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, value, root, size, tag)
    return result
