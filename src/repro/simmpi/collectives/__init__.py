"""Algorithmic variants of MPI collective operations.

Each module implements one collective as generator functions built from
point-to-point sends/receives, mirroring the communication structure of the
like-named algorithms in Open MPI's ``coll/tuned`` component.  Because the
structure is real (not a closed-form cost model), algorithm-dependent
artefacts — barrier-exit imbalance, skewed completion times, latency
differences between variants — emerge from the simulation, which is exactly
what the paper's Figs. 7–9 study.
"""

from repro.simmpi.collectives.barrier import BARRIER_ALGORITHMS, barrier
from repro.simmpi.collectives.bcast import BCAST_ALGORITHMS, bcast
from repro.simmpi.collectives.reduce import REDUCE_ALGORITHMS, reduce
from repro.simmpi.collectives.allreduce import ALLREDUCE_ALGORITHMS, allreduce
from repro.simmpi.collectives.gather import GATHER_ALGORITHMS, gather
from repro.simmpi.collectives.scatter import SCATTER_ALGORITHMS, scatter
from repro.simmpi.collectives.allgather import ALLGATHER_ALGORITHMS, allgather
from repro.simmpi.collectives.alltoall import ALLTOALL_ALGORITHMS, alltoall

__all__ = [
    "BARRIER_ALGORITHMS",
    "BCAST_ALGORITHMS",
    "REDUCE_ALGORITHMS",
    "ALLREDUCE_ALGORITHMS",
    "GATHER_ALGORITHMS",
    "SCATTER_ALGORITHMS",
    "ALLGATHER_ALGORITHMS",
    "ALLTOALL_ALGORITHMS",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]
