"""``MPI_Alltoall``: pairwise-exchange algorithm.

Present for substrate completeness (the paper's motivation mentions tuning
``MPI_Alltoall`` for small payloads); the pairwise algorithm is Open MPI's
default for small messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.errors import CommunicatorError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def _pairwise(
    comm: "Communicator", values: Sequence[Any], size: int, tag: int
) -> Generator[Any, Any, list[Any]]:
    """p-1 rounds; in round k exchange with ranks at ring distance k."""
    rank, nprocs = comm.rank, comm.size
    out: list[Any] = [None] * nprocs
    out[rank] = values[rank]
    for k in range(1, nprocs):
        dest = (rank + k) % nprocs
        src = (rank - k) % nprocs
        yield from comm.send_raw(dest, tag, values[dest], size)
        msg = yield from comm.recv_raw(src, tag)
        out[src] = msg.payload
    return out


def _bruck(
    comm: "Communicator", values: Sequence[Any], size: int, tag: int
) -> Generator[Any, Any, list[Any]]:
    """Bruck alltoall: ⌈log₂ p⌉ rounds of bulk shifted exchanges.

    Latency-optimal for small payloads at the cost of forwarding each
    datum up to log p times.  Data for destination d leaves rank r in
    round k iff bit k of ``(d - r) mod p`` is set.
    """
    rank, nprocs = comm.rank, comm.size
    # pending[d]: payload currently held here destined for rank d (the
    # initial local rotation of the classic algorithm is implicit).
    pending: dict[int, Any] = {
        d: values[d] for d in range(nprocs) if d != rank
    }
    out: list[Any] = [None] * nprocs
    out[rank] = values[rank]
    k = 1
    while k < nprocs:
        to = (rank + k) % nprocs
        frm = (rank - k) % nprocs
        block = {
            d: payload
            for d, payload in pending.items()
            if ((d - rank) % nprocs) & k
        }
        for d in block:
            del pending[d]
        yield from comm.send_raw(
            to, tag, block, size * max(1, len(block))
        )
        msg = yield from comm.recv_raw(frm, tag)
        for d, payload in msg.payload.items():
            if d == rank:
                out[d] = payload
            else:
                pending[d] = payload
        k <<= 1
    # Everything pending must have been delivered by now.
    assert not pending, pending
    return out


ALLTOALL_ALGORITHMS = {
    "pairwise": _pairwise,
    "bruck": _bruck,
}


def alltoall(
    comm: "Communicator",
    values: Sequence[Any],
    size: int = 8,
    algorithm: str = "pairwise",
) -> Generator[Any, Any, list[Any]]:
    """Exchange ``values[i]`` with rank ``i``; returns the received list."""
    if len(values) != comm.size:
        raise CommunicatorError("alltoall needs one value per rank")
    try:
        impl = ALLTOALL_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown alltoall algorithm {algorithm!r}; "
            f"choose from {sorted(ALLTOALL_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    result = yield from impl(comm, values, size, tag)
    return result
