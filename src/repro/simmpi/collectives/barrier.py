"""``MPI_Barrier`` algorithm variants.

These are the variants Open MPI's ``coll/tuned`` component offers and the
paper benchmarks in Figs. 7–8: ``linear`` (flat fan-in/fan-out), ``tree``
(binomial gather + binomial release), ``double_ring`` (a token circulating
the ring twice), ``bruck`` (dissemination), and ``recursive_doubling``.

The paper's Fig. 8 finding — the tree barrier has by far the smallest exit
imbalance while the double ring has the largest — follows directly from the
communication structure reproduced here: the release phase of the tree is a
log-depth broadcast (everyone exits within O(log p) hops of the same
instant), while the double ring's exit times are spread across a full
O(p)-latency token circulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import CommunicatorError
from repro.simmpi.collectives._tree import (
    binomial_children,
    binomial_parent,
    highest_power_of_two_below,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: Size in bytes of the zero-payload control messages a barrier exchanges.
TOKEN_BYTES = 1


def _linear(comm: "Communicator", tag: int) -> Generator:
    """Fan-in to rank 0, then fan-out release (flat, O(p) messages at root)."""
    if comm.rank == 0:
        for _ in range(comm.size - 1):
            yield from comm.recv_raw(None, tag)
        for peer in range(1, comm.size):
            yield from comm.send_raw(peer, tag, size=TOKEN_BYTES)
    else:
        yield from comm.send_raw(0, tag, size=TOKEN_BYTES)
        yield from comm.recv_raw(0, tag)


def _tree(comm: "Communicator", tag: int) -> Generator:
    """Binomial gather followed by binomial release (Open MPI 'tree')."""
    rank, size = comm.rank, comm.size
    parent = binomial_parent(rank, size)
    children = binomial_children(rank, size)
    # Gather phase: receive from children (deepest subtrees last in the
    # reversed order to mirror the reduce direction), then notify parent.
    for child in reversed(children):
        yield from comm.recv_raw(child, tag)
    if parent is not None:
        yield from comm.send_raw(parent, tag, size=TOKEN_BYTES)
        yield from comm.recv_raw(parent, tag)
    # Release phase: forward to children.
    for child in children:
        yield from comm.send_raw(child, tag, size=TOKEN_BYTES)


def _double_ring(comm: "Communicator", tag: int) -> Generator:
    """A token travels the ring twice; exits are spread over O(p) latency."""
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    left = (rank - 1) % size
    right = (rank + 1) % size
    if rank == 0:
        for _ in range(2):
            yield from comm.send_raw(right, tag, size=TOKEN_BYTES)
            yield from comm.recv_raw(left, tag)
    else:
        for _ in range(2):
            yield from comm.recv_raw(left, tag)
            yield from comm.send_raw(right, tag, size=TOKEN_BYTES)


def _bruck(comm: "Communicator", tag: int) -> Generator:
    """Dissemination barrier: ceil(log2 p) rounds of shifted exchanges."""
    rank, size = comm.rank, comm.size
    dist = 1
    while dist < size:
        to = (rank + dist) % size
        frm = (rank - dist) % size
        yield from comm.send_raw(to, tag, size=TOKEN_BYTES)
        yield from comm.recv_raw(frm, tag)
        dist <<= 1


def _recursive_doubling(comm: "Communicator", tag: int) -> Generator:
    """Pairwise-exchange barrier with the standard non-power-of-two fold."""
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    m = highest_power_of_two_below(size)
    rem = size - m
    if rank >= m:
        # Surplus ranks notify a partner in the power-of-two core and wait.
        yield from comm.send_raw(rank - m, tag, size=TOKEN_BYTES)
        yield from comm.recv_raw(rank - m, tag)
        return
    if rank < rem:
        yield from comm.recv_raw(rank + m, tag)
    mask = 1
    while mask < m:
        partner = rank ^ mask
        yield from comm.send_raw(partner, tag, size=TOKEN_BYTES)
        yield from comm.recv_raw(partner, tag)
        mask <<= 1
    if rank < rem:
        yield from comm.send_raw(rank + m, tag, size=TOKEN_BYTES)


BARRIER_ALGORITHMS = {
    "linear": _linear,
    "tree": _tree,
    "double_ring": _double_ring,
    "bruck": _bruck,
    "recursive_doubling": _recursive_doubling,
}


def barrier(comm: "Communicator", algorithm: str = "tree") -> Generator:
    """Execute one barrier over ``comm`` with the named algorithm."""
    try:
        impl = BARRIER_ALGORITHMS[algorithm]
    except KeyError:
        raise CommunicatorError(
            f"unknown barrier algorithm {algorithm!r}; "
            f"choose from {sorted(BARRIER_ALGORITHMS)}"
        ) from None
    tag = comm.next_collective_tag()
    yield from impl(comm, tag)
