"""Deterministic discrete-event engine for simulated MPI processes.

Each simulated process is a Python generator that *carries its own current
true time* (``ProcessContext.now``) and yields command objects:

* :class:`SendCmd` — deposit a message (eager or rendezvous),
* :class:`RecvCmd` — blocking receive with source/tag matching,
* :class:`ElapseCmd` / :class:`WaitUntilCmd` — advance local time.

The engine executes a process *inline* until it blocks on an unmatched
receive or a rendezvous acknowledgement — with a **causality gate**: a
command only executes while its process is not ahead of the earliest
pending event, otherwise it is deferred and re-issued when the heap
catches up.  The gate makes execution order equal to simulated-time order,
which keeps shared state (per-node NIC availability, ``ANY_SOURCE``
mailboxes) causal while still letting uncontended message chains run
inline without heap churn.

Determinism: heap ties are broken by a monotonic sequence number, and all
randomness flows from per-process `numpy` generators spawned from a single
:class:`numpy.random.SeedSequence` — identical seeds give bit-identical
simulations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.errors import DeadlockError, MatchingError, SimulationError
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, RecvDescriptor
from repro.simmpi.network import Level, NetworkModel


# ----------------------------------------------------------------------
# Commands a process generator may yield
# ----------------------------------------------------------------------
@dataclass
class SendCmd:
    """Send ``payload`` (``size`` bytes on the wire) to global rank ``dest``.

    ``synchronous=True`` models ``MPI_Ssend``: the sender blocks until the
    receiver has matched the message, then pays one ack latency.
    """

    dest: int
    tag: int
    payload: Any = None
    size: int = 8
    synchronous: bool = False


@dataclass
class RecvCmd:
    """Blocking receive; yields back the matched :class:`Message`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class ElapseCmd:
    """Consume ``duration`` seconds of local computation."""

    duration: float


@dataclass
class WaitUntilCmd:
    """Sleep until the given *true* time (no-op if already past)."""

    true_time: float


Command = SendCmd | RecvCmd | ElapseCmd | WaitUntilCmd


class _Proc:
    """Engine-internal bookkeeping for one simulated process."""

    __slots__ = (
        "rank",
        "gen",
        "now",
        "blocked",
        "pending_value",
        "pending_cmd",
        "finished",
        "result",
        "rng",
        "mailbox",
        "recv_wait",
    )

    def __init__(self, rank: int, rng: np.random.Generator) -> None:
        self.rank = rank
        self.gen: Generator[Command, Any, Any] | None = None
        self.now = 0.0
        #: RecvDescriptor while blocked on an unmatched receive, the string
        #: "ssend" while waiting for a rendezvous ack, or None when runnable.
        self.blocked: RecvDescriptor | str | None = None
        self.pending_value: Any = None
        #: Command pulled from the generator but deferred by the causality
        #: gate (the process was ahead of the global event frontier).
        self.pending_cmd: Command | None = None
        self.finished = False
        self.result: Any = None
        self.rng = rng
        #: Messages deposited for this rank, in send order.
        self.mailbox: list[Message] = []
        self.recv_wait: RecvDescriptor | None = None


class Engine:
    """Event loop coordinating all simulated processes of one MPI job."""

    def __init__(
        self,
        network: NetworkModel,
        level_of: Callable[[int, int], Level],
        seed: int | np.random.SeedSequence = 0,
        max_true_time: float = 1e7,
        node_of: Callable[[int], int] | None = None,
        extra_node_latency: Callable[[int, int], float] | None = None,
    ) -> None:
        self.network = network
        self.level_of = level_of
        #: Maps a rank to its node id; required for NIC-gap modelling.
        self.node_of = node_of or (lambda rank: 0)
        #: Fabric hook: extra one-way latency between two *nodes* (torus
        #: hop costs etc.); applied to REMOTE messages only.
        self.extra_node_latency = extra_node_latency
        #: Per-node NIC next-free times (egress and ingress serialization).
        self._nic_egress: dict[int, float] = {}
        self._nic_ingress: dict[int, float] = {}
        self.max_true_time = float(max_true_time)
        self._seedseq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._procs: list[_Proc] = []
        self._heap: list[tuple[float, int, int]] = []  # (time, seq, rank)
        self._seq = itertools.count()
        self._msg_seq = itertools.count()
        self._started = False
        #: Monotonically increasing count of delivered messages (stats).
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_process(self) -> int:
        """Reserve a rank and its RNG; returns the new global rank."""
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        rank = len(self._procs)
        rng = np.random.default_rng(self._seedseq.spawn(1)[0])
        self._procs.append(_Proc(rank, rng))
        return rank

    def bind(self, rank: int, gen: Generator[Command, Any, Any]) -> None:
        """Attach the generator body for a previously added rank."""
        proc = self._procs[rank]
        if proc.gen is not None:
            raise SimulationError(f"rank {rank} already has a body")
        proc.gen = gen

    @property
    def num_ranks(self) -> int:
        """Number of processes registered with the engine."""
        return len(self._procs)

    def proc_now(self, rank: int) -> float:
        """Current true time of a process (used by ProcessContext)."""
        return self._procs[rank].now

    def set_proc_now(self, rank: int, value: float) -> None:
        """Advance a process's local true time (ProcessContext hook)."""
        self._procs[rank].now = value

    def rng_of(self, rank: int) -> np.random.Generator:
        """The per-process random stream (deterministic per seed)."""
        return self._procs[rank].rng

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Run every process to completion; returns per-rank return values."""
        if self._started:
            raise SimulationError("engine can only run once")
        self._started = True
        for proc in self._procs:
            if proc.gen is None:
                raise SimulationError(f"rank {proc.rank} has no body bound")
            self._schedule(proc, 0.0)

        while self._heap:
            t, _, rank = heapq.heappop(self._heap)
            proc = self._procs[rank]
            if proc.finished:
                continue
            if t > self.max_true_time:
                raise SimulationError(
                    f"simulation exceeded max_true_time={self.max_true_time}"
                )
            proc.now = max(proc.now, t)
            self._run_proc(proc)

        unfinished = [p.rank for p in self._procs if not p.finished]
        if unfinished:
            states = {
                p.rank: p.blocked for p in self._procs if p.rank in unfinished
            }
            raise DeadlockError(
                f"deadlock: ranks {unfinished} blocked with states {states}"
            )
        return [p.result for p in self._procs]

    def _schedule(self, proc: _Proc, time: float) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), proc.rank))

    def _run_proc(self, proc: _Proc) -> None:
        """Step ``proc`` inline until it blocks, defers, or finishes.

        Causality gate: a command only executes while its process is not
        ahead of the earliest pending event in the heap.  Without the
        gate, a process running ahead of global time would mutate shared
        state (the per-node NIC availability, ANY_SOURCE mailboxes) out of
        time order and other processes would observe effects "from the
        future".  A gated command is stashed on the process and re-issued
        when the heap catches up.
        """
        gen = proc.gen
        assert gen is not None
        value = proc.pending_value
        proc.pending_value = None
        cmd: Command | None = proc.pending_cmd
        proc.pending_cmd = None
        proc.blocked = None
        while True:
            if cmd is None:
                try:
                    cmd = gen.send(value)
                except StopIteration as stop:
                    proc.finished = True
                    proc.result = stop.value
                    return
                value = None
            if self._heap and proc.now > self._heap[0][0]:
                # Ahead of the frontier: defer until the heap catches up.
                proc.pending_cmd = cmd
                self._schedule(proc, proc.now)
                return
            if type(cmd) is SendCmd:
                self._do_send(proc, cmd)
                if cmd.synchronous:
                    # Sender parks until the receiver matches (rendezvous).
                    proc.blocked = "ssend"
                    return
            elif type(cmd) is RecvCmd:
                msg = self._match_mailbox(proc, cmd.source, cmd.tag)
                if msg is None:
                    proc.blocked = RecvDescriptor(
                        proc.rank, cmd.source, cmd.tag, proc.now
                    )
                    return
                value = self._complete_recv(proc, msg)
            elif type(cmd) is ElapseCmd:
                if cmd.duration < 0:
                    raise SimulationError("cannot elapse a negative duration")
                proc.now += cmd.duration
            elif type(cmd) is WaitUntilCmd:
                if cmd.true_time > proc.now:
                    proc.now = cmd.true_time
            else:
                raise SimulationError(f"unknown command {cmd!r}")
            cmd = None

    # ------------------------------------------------------------------
    # Point-to-point mechanics
    # ------------------------------------------------------------------
    def _do_send(self, proc: _Proc, cmd: SendCmd) -> None:
        if not 0 <= cmd.dest < len(self._procs):
            raise MatchingError(f"send to invalid rank {cmd.dest}")
        level = self.level_of(proc.rank, cmd.dest)
        send_time = proc.now
        proc.now += self.network.o_send
        delay = self.network.delay(level, cmd.size, proc.rng)
        if (
            self.extra_node_latency is not None
            and level == Level.REMOTE
        ):
            delay += self.extra_node_latency(
                self.node_of(proc.rank), self.node_of(cmd.dest)
            )
        arrival = send_time + self.network.o_send + delay
        gap = self.network.nic_gap
        if gap > 0.0 and level == Level.REMOTE:
            # Egress: messages leaving a node serialize at its NIC.
            src_node = self.node_of(proc.rank)
            inject = max(proc.now, self._nic_egress.get(src_node, 0.0))
            self._nic_egress[src_node] = inject + gap
            # Congestion: delay variance grows with the backlog this
            # message found at the NIC (queueing, adaptive routing...).
            backlog = (inject - proc.now) / gap
            cj = self.network.congestion_jitter
            if cj > 0.0 and backlog > 0.0:
                delay += proc.rng.exponential(cj * backlog)
            arrival = inject + gap + delay
            # Ingress: arrivals at the destination node serialize too.
            dst_node = self.node_of(cmd.dest)
            arrival = max(arrival, self._nic_ingress.get(dst_node, 0.0))
            self._nic_ingress[dst_node] = arrival + gap
        msg = Message(
            source=proc.rank,
            dest=cmd.dest,
            tag=cmd.tag,
            payload=cmd.payload,
            size=cmd.size,
            send_time=send_time,
            arrival=arrival,
            seq=next(self._msg_seq),
            sync_sender=proc if cmd.synchronous else None,
        )
        dest = self._procs[cmd.dest]
        blocked = dest.blocked
        if isinstance(blocked, RecvDescriptor) and msg.matches(
            blocked.source, blocked.tag
        ):
            # Wake the receiver: it resumes once the message arrives.
            dest.blocked = None
            dest.pending_value = None
            resume_at = max(dest.now, msg.arrival)
            dest.now = resume_at
            dest.pending_value = self._finish_delivery(dest, msg)
            self._schedule(dest, resume_at)
        else:
            dest.mailbox.append(msg)

    def _match_mailbox(self, proc: _Proc, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(proc.mailbox):
            if msg.matches(source, tag):
                del proc.mailbox[i]
                return msg
        return None

    def _complete_recv(self, proc: _Proc, msg: Message) -> Message:
        proc.now = max(proc.now, msg.arrival)
        return self._finish_delivery(proc, msg)

    def _finish_delivery(self, proc: _Proc, msg: Message) -> Message:
        """Charge receive overhead and release a rendezvous sender."""
        proc.now += self.network.o_recv
        self.messages_delivered += 1
        sender = msg.sync_sender
        if sender is not None:
            # The ack travels back; the sender resumes after its arrival.
            level = self.level_of(msg.dest, msg.source)
            ack_delay = self.network.delay(level, 8, proc.rng)
            resume_at = max(proc.now, msg.arrival) + ack_delay
            sender.now = max(sender.now, resume_at)
            sender.blocked = None
            self._schedule(sender, sender.now)
            msg.sync_sender = None
        return msg

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def blocked_ranks(self) -> Iterable[int]:
        """Ranks currently blocked (valid only mid-run; for debugging)."""
        return [p.rank for p in self._procs if p.blocked is not None]
