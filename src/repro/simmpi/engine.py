"""Deterministic discrete-event engine for simulated MPI processes.

Each simulated process is a Python generator that *carries its own current
true time* (``ProcessContext.now``) and yields command objects:

* :class:`SendCmd` — deposit a message (eager or rendezvous),
* :class:`RecvCmd` — blocking receive with source/tag matching,
* :class:`SendRecvCmd` — fused exchange (send, then blocking receive),
* :class:`ElapseCmd` / :class:`WaitUntilCmd` — advance local time.

The engine executes a process *inline* until it blocks on an unmatched
receive or a rendezvous acknowledgement — with a **causality gate**: a
command only executes while its process is not ahead of the earliest
pending event, otherwise it is deferred and re-issued when the event
queue catches up.  The gate makes execution order equal to simulated-time
order, which keeps shared state (per-node NIC availability, ``ANY_SOURCE``
mailboxes) causal while still letting uncontended message chains run
inline without queue churn.

Pending events live in a pluggable queue (see :mod:`repro.simmpi.eventq`):
the default calendar/bucket queue pays O(1) amortized per event at any
rank count, the legacy binary heap is kept for A/B comparison.  Both pop
in identical ``(time, seq)`` order, so the choice — like the bucket
width — is a pure performance knob.

Determinism: queue ties are broken by a monotonic sequence number, and all
randomness flows from per-process `numpy` generators spawned from a single
:class:`numpy.random.SeedSequence` — identical seeds give bit-identical
simulations.  The one gated exception is ``delay_mode="burst"``, which
draws whole bursts of per-message delay variates as numpy arrays: it is
deterministic per seed but consumes the uniform stream in a different
order than the scalar path, so it is off by default and carries its own
golden baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log1p
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

import numpy as np

from repro.errors import DeadlockError, MatchingError, SimulationError
from repro.obs import events as obs_events
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesBank
from repro.simmpi.eventq import QUEUE_KINDS, auto_bucket_width, make_queue
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, RecvDescriptor
from repro.simmpi.network import Level, NetworkModel
from repro.simmpi.rngpool import DEFAULT_CHUNK, UniformPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.prof.core import Profiler


#: Recognized ``delay_mode`` spellings.
DELAY_MODES = ("scalar", "burst")
#: Stochastic delay addends precomputed per (process, level) burst refill.
DEFAULT_DELAY_BURST = 64


# ----------------------------------------------------------------------
# Commands a process generator may yield
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SendCmd:
    """Send ``payload`` (``size`` bytes on the wire) to global rank ``dest``.

    ``synchronous=True`` models ``MPI_Ssend``: the sender blocks until the
    receiver has matched the message, then pays one ack latency.

    ``size`` is validated here, at construction, so a negative size can
    never reach the delay/``bytes_sent`` accounting paths — the network
    model's per-message ``delay`` call stays check-free.
    """

    dest: int
    tag: int
    payload: Any = None
    size: int = 8
    synchronous: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(
                f"message size must be >= 0, got {self.size}"
            )


@dataclass(slots=True)
class RecvCmd:
    """Blocking receive; yields back the matched :class:`Message`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(slots=True)
class SendRecvCmd:
    """Fused ``MPI_Sendrecv``: eager send, then a blocking receive.

    Semantically identical to yielding a :class:`SendCmd` followed by a
    :class:`RecvCmd` — the engine performs the send half, re-evaluates the
    causality gate at exactly the point the separate ``RecvCmd`` would
    have been gated, then runs the receive half.  Fusing skips one full
    generator resume through the ``comm.sendrecv``/``ctx.sendrecv`` frame
    chain per exchange, which is the dominant per-message interpreter
    cost in exchange-heavy workloads (ring offset collection, recursive
    doubling).  Results are bit-identical to the unfused pair.
    """

    dest: int
    tag: int
    payload: Any = None
    size: int = 8
    source: int = ANY_SOURCE
    recv_tag: int = ANY_TAG

    # _do_send reads ``cmd.synchronous``; a fused exchange is always an
    # eager send (MPI_Sendrecv has no rendezvous variant here), so this is
    # a class attribute rather than a per-instance field.
    synchronous = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(
                f"message size must be >= 0, got {self.size}"
            )


@dataclass(slots=True)
class ElapseCmd:
    """Consume ``duration`` seconds of local computation.

    Negative durations are rejected at construction (the engine's command
    loop no longer re-checks per execution).
    """

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError("cannot elapse a negative duration")


@dataclass(slots=True)
class WaitUntilCmd:
    """Sleep until the given *true* time (no-op if already past)."""

    true_time: float


Command = SendCmd | RecvCmd | SendRecvCmd | ElapseCmd | WaitUntilCmd


class _Proc:
    """Engine-internal bookkeeping for one simulated process."""

    __slots__ = (
        "rank",
        "gen",
        "now",
        "blocked",
        "pending_value",
        "pending_cmd",
        "finished",
        "result",
        "seed",
        "_rng",
        "pool",
        "bursts",
        "mailbox",
        "recv_wait",
        "block_time",
    )

    def __init__(self, rank: int, seed: np.random.SeedSequence) -> None:
        self.rank = rank
        self.gen: Generator[Command, Any, Any] | None = None
        self.now = 0.0
        #: RecvDescriptor while blocked on an unmatched receive, the string
        #: "ssend" while waiting for a rendezvous ack, or None when runnable.
        self.blocked: RecvDescriptor | str | None = None
        self.pending_value: Any = None
        #: Command pulled from the generator but deferred by the causality
        #: gate (the process was ahead of the global event frontier).
        self.pending_cmd: Command | None = None
        self.finished = False
        self.result: Any = None
        #: Per-process child seed; ``rng``/``pool`` are materialized from
        #: it lazily (see :meth:`get_rng`), so ranks that never draw —
        #: common at large p — cost no generator construction at all.
        #: Laziness is invisible to results: seeding consumes no entropy,
        #: and each stream's bits depend only on this seed.
        self.seed = seed
        self._rng: np.random.Generator | None = None
        #: Chunked uniform pool feeding this process's message-delay
        #: draws; a dedicated stream (spawned from the same per-process
        #: seed) so pool prefetching never steals draws from ``rng``.
        #: Built on first send by the engine (which knows the chunk size).
        self.pool: UniformPool | None = None
        #: Per-level burst buffers of precomputed stochastic delay
        #: addends (``delay_mode="burst"`` only).
        self.bursts: list[list] | None = None
        #: Messages deposited for this rank, in send order.
        self.mailbox: list[Message] = []
        self.recv_wait: RecvDescriptor | None = None
        #: True time at which the process last blocked (diagnostics).
        self.block_time = 0.0

    def get_rng(self) -> np.random.Generator:
        """The algorithm-visible random stream, built on first use."""
        rng = self._rng
        if rng is None:
            rng = self._rng = np.random.default_rng(self.seed)
        return rng


class Engine:
    """Event loop coordinating all simulated processes of one MPI job."""

    def __init__(
        self,
        network: NetworkModel,
        level_of: Callable[[int, int], Level],
        seed: int | np.random.SeedSequence = 0,
        max_true_time: float = 1e7,
        node_of: Callable[[int], int] | None = None,
        extra_node_latency: Callable[[int, int], float] | None = None,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        timeseries: TimeSeriesBank | None = None,
        injector: "FaultInjector | None" = None,
        rng_pool_chunk: int = DEFAULT_CHUNK,
        profiler: "Profiler | None" = None,
        event_queue: str = "calendar",
        bucket_width: float | None = None,
        delay_mode: str = "scalar",
        delay_burst: int = DEFAULT_DELAY_BURST,
    ) -> None:
        if event_queue not in QUEUE_KINDS:
            raise SimulationError(
                f"event_queue must be one of {QUEUE_KINDS}, "
                f"got {event_queue!r}"
            )
        if delay_mode not in DELAY_MODES:
            raise SimulationError(
                f"delay_mode must be one of {DELAY_MODES}, "
                f"got {delay_mode!r}"
            )
        if delay_burst < 1:
            raise SimulationError("delay_burst must be >= 1")
        self.network = network
        self.level_of = level_of
        #: Maps a rank to its node id; required for NIC-gap modelling.
        self.node_of = node_of or (lambda rank: 0)
        #: Fabric hook: extra one-way latency between two *nodes* (torus
        #: hop costs etc.); applied to REMOTE messages only.
        self.extra_node_latency = extra_node_latency
        #: Per-node NIC next-free times (egress and ingress serialization).
        self._nic_egress: dict[int, float] = {}
        self._nic_ingress: dict[int, float] = {}
        self.max_true_time = float(max_true_time)
        self._seedseq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._procs: list[_Proc] = []
        #: Pending-event queue kind ("calendar" or "heap") and the bucket
        #: width for the calendar kernel (None = auto from the network
        #: model and rank count).  Both are pure performance knobs: all
        #: kinds/widths pop events in the same (time, seq) order, which
        #: the kernel-equivalence suite pins.
        self.event_queue = event_queue
        self.bucket_width = bucket_width
        self._queue = None  # built in _run(), once num_ranks is known
        self._seq = 0  # event-queue tie-break counter
        self._msg_seq = 0  # message sequence numbers (send order)
        self._started = False
        #: Chunk size cap of the per-process delay-draw pools (a pure perf
        #: knob: results are bit-identical for any value, see rngpool).
        self.rng_pool_chunk = rng_pool_chunk
        #: How per-message stochastic delays are drawn: "scalar" (default;
        #: one pooled uniform per variate, the bit-identity baseline) or
        #: "burst" (vectorized numpy bursts per (process, level) — same
        #: distribution and deterministic per seed, but a different draw
        #: order, hence gated behind this option with its own goldens).
        self.delay_mode = delay_mode
        self.delay_burst = int(delay_burst)
        #: Unfinished processes; the causality gate is skipped once only
        #: one process remains (no shared state left to keep causal).
        self._live = 0
        #: Commands deferred by the causality gate (queue round-trips).
        self.gate_deferrals = 0
        #: ``rank -> node`` resolved once at run() (hot-path cache).
        self._node_cache: list[int] = []
        #: ``src * num_ranks + dest -> Level`` memo of ``level_of``
        #: (hot-path cache; int keys hash cheaper than rank tuples).
        self._level_cache: dict[int, Level] = {}
        self._rank_stride = 0  # num_ranks snapshot for level-cache keys
        #: True while running with every optional hook absent (no sink,
        #: metrics, timeseries, injector, profiler, or fabric pricing):
        #: the per-message path then dispatches to observation-free
        #: twins of _do_send/_finish_delivery.  Same draws, same state
        #: updates — bit-identical, just with the ~dozen hook branches
        #: removed from the hottest call in the simulator.
        self._quiet = False
        #: Optional observability hooks (see :mod:`repro.obs`).  Both are
        #: passive; with ``sink=None`` the emission sites reduce to one
        #: pointer comparison (the zero-overhead fast path).
        self.sink = sink
        self.metrics = metrics
        #: Optional clock-health telemetry bank (see
        #: :mod:`repro.obs.timeseries`); same passivity contract.
        self.timeseries = timeseries
        #: Optional fault injector (see :mod:`repro.faults`): perturbs
        #: delay draws, NIC gaps, and compute intervals at scheduled true
        #: times.  ``None`` keeps every hot path on its fault-free branch.
        self.injector = injector
        #: Optional wall-time self-profiler (see :mod:`repro.prof`).
        #: Profiling only reads the host clock — it never draws
        #: randomness or advances virtual time, so profiled runs are
        #: bit-identical to unprofiled ones; with ``None`` every
        #: instrumentation site is one pointer comparison.
        self.profiler = profiler
        #: Monotonically increasing count of delivered messages (stats).
        self.messages_delivered = 0
        #: Payload bytes of all delivered messages.
        self.bytes_delivered = 0
        #: Messages injected (sent), including ones still in flight.
        self.messages_sent = 0
        #: Payload bytes injected into the network.
        self.bytes_sent = 0
        #: Synchronous sends that had to park waiting for their match.
        self.rendezvous_stalls = 0
        #: Deepest mailbox (unmatched-message queue) seen during the run.
        self.max_mailbox_depth = 0
        #: Messages still sitting in mailboxes when the run completed
        #: (sent but never received; finalized at the end of run()).
        self.messages_unreceived = 0
        #: Events popped off the pending-event queue (loop iterations).
        self.events_processed = 0
        #: Deepest pending-event queue seen during the run.
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_process(self) -> int:
        """Reserve a rank and its RNG seed; returns the new global rank.

        Each process gets two independent streams spawned from its own
        child seed: ``rng`` (algorithm-visible randomness — poll slack,
        fault perturbations) and a pooled stream dedicated to message-
        delay draws.  Keeping them separate means pool prefetching can
        never shift draws seen by algorithm-level consumers.  Both are
        materialized lazily on first draw.
        """
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        rank = len(self._procs)
        child = self._seedseq.spawn(1)[0]
        self._procs.append(_Proc(rank, child))
        self._rank_stride = rank + 1
        return rank

    def add_processes(self, count: int) -> range:
        """Batch-reserve ``count`` ranks; returns their rank range.

        Equivalent to ``count`` calls to :meth:`add_process` —
        ``SeedSequence.spawn(k)`` hands out the same children as k
        successive ``spawn(1)`` calls — but one spawn call instead of k,
        which matters at thousands of ranks.
        """
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        if count < 0:
            raise SimulationError("process count must be >= 0")
        start = len(self._procs)
        children = self._seedseq.spawn(count)
        self._procs.extend(
            _Proc(start + i, child) for i, child in enumerate(children)
        )
        self._rank_stride = start + count
        return range(start, start + count)

    def bind(self, rank: int, gen: Generator[Command, Any, Any]) -> None:
        """Attach the generator body for a previously added rank."""
        proc = self._procs[rank]
        if proc.gen is not None:
            raise SimulationError(f"rank {rank} already has a body")
        proc.gen = gen

    @property
    def num_ranks(self) -> int:
        """Number of processes registered with the engine."""
        return len(self._procs)

    def proc_now(self, rank: int) -> float:
        """Current true time of a process (used by ProcessContext)."""
        return self._procs[rank].now

    def set_proc_now(self, rank: int, value: float) -> None:
        """Advance a process's local true time (ProcessContext hook)."""
        self._procs[rank].now = value

    def rng_of(self, rank: int) -> np.random.Generator:
        """The per-process random stream (deterministic per seed)."""
        return self._procs[rank].get_rng()

    def _pool_of(self, proc: _Proc) -> UniformPool:
        """Materialize a process's delay-draw pool on first send."""
        pool = UniformPool(
            np.random.default_rng(proc.seed.spawn(1)[0]),
            self.rng_pool_chunk,
        )
        proc.pool = pool
        return pool

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Run every process to completion; returns per-rank return values."""
        if self._started:
            raise SimulationError("engine can only run once")
        self._started = True
        prof = self.profiler
        if prof is None:
            return self._run()
        start = prof.push("engine.run")
        try:
            return self._run()
        finally:
            prof.pop(start)

    def _make_queue(self):
        width = self.bucket_width
        if width is None:
            # One message's service window: CPU overheads plus the mean
            # coarsest-level wire time of a minimal payload.  A p-rank
            # job keeps ~p events inside such a window, so dividing by p
            # keeps per-bucket occupancy roughly constant at every scale.
            network = self.network
            service = (
                network.o_send
                + network.o_recv
                + network.expected_delay(Level.REMOTE, 8)
            )
            width = auto_bucket_width(service, len(self._procs))
        return make_queue(self.event_queue, width)

    def _run(self) -> list[Any]:
        if self.injector is not None:
            # The schedule is known a priori: emit one record per fault
            # so traces show fault windows at their exact virtual times.
            events = self.injector.schedule_events()
            if self.sink is not None:
                for event in events:
                    self.sink.emit(event)
            if self.metrics is not None and events:
                self.metrics.counter("faults.scheduled").inc(len(events))
            if self.timeseries is not None:
                # Fault markers anchor the resync-latency detector; they
                # are rank-agnostic (a fault hits a node/level, and the
                # error series of every rank may react to it).
                for event in events:
                    self.timeseries.mark(
                        "fault", event.time,
                        f"{event.kind}:{event.name}@{event.target}",
                    )
        self._queue = queue = self._make_queue()
        for proc in self._procs:
            if proc.gen is None:
                raise SimulationError(f"rank {proc.rank} has no body bound")
            self._schedule(proc, 0.0)
        # Resolve topology lookups once: placements are immutable, so the
        # rank->node and (src, dest)->level maps are pure functions.  The
        # node cache is a flat list; levels memoize lazily (only pairs
        # that actually communicate are materialized).
        self._node_cache = [
            self.node_of(rank) for rank in range(len(self._procs))
        ]
        self._level_cache.clear()
        self._rank_stride = len(self._procs)
        self._live = len(self._procs)
        self._quiet = (
            self.sink is None
            and self.metrics is None
            and self.timeseries is None
            and self.injector is None
            and self.profiler is None
            and self.extra_node_latency is None
            # Instance-level monkeypatches (the sanitizer's mutant tests
            # replace these bound methods) must keep taking effect.
            and "_do_send" not in self.__dict__
            and "_finish_delivery" not in self.__dict__
        )

        procs = self._procs
        max_true_time = self.max_true_time
        bank = self.timeseries
        pop = queue.pop
        events = 0
        max_depth = self.max_queue_depth
        try:
            while queue.size:
                t, _, rank = pop()
                events += 1
                depth = queue.size
                if depth > max_depth:
                    max_depth = depth
                if bank is not None and not events & 63:
                    # Event-queue pressure telemetry: sampled every 64
                    # pops so health reports can show queue depth next to
                    # NIC backlog without touching the per-event cost.
                    bank.sample(
                        "engine.events.queue_depth", t, float(depth)
                    )
                    bank.sample(
                        "engine.events.processed", t, float(events)
                    )
                proc = procs[rank]
                if proc.finished:
                    continue
                if t > max_true_time:
                    raise SimulationError(
                        f"simulation exceeded max_true_time={max_true_time}"
                    )
                if t > proc.now:
                    proc.now = t
                self._run_proc(proc)
        finally:
            self.events_processed += events
            self.max_queue_depth = max_depth

        unfinished = [p.rank for p in self._procs if not p.finished]
        if unfinished:
            states = {
                p.rank: p.blocked for p in self._procs if p.rank in unfinished
            }
            # An attached sanitizer (see repro.check) can name the
            # blocked-wait cycle; without one the raw states must do.
            diagnose = getattr(self.sink, "deadlock_diagnosis", None)
            detail = f"\n{diagnose(self)}" if diagnose is not None else ""
            raise DeadlockError(
                f"deadlock: ranks {unfinished} blocked with states "
                f"{states}{detail}"
            )
        self.messages_unreceived = sum(len(p.mailbox) for p in procs)
        return [p.result for p in self._procs]

    def _schedule(self, proc: _Proc, time: float) -> None:
        seq = self._seq
        self._seq = seq + 1
        self._queue.push(time, seq, proc.rank)

    def _run_proc(self, proc: _Proc) -> None:
        """Step ``proc`` inline until it blocks, defers, or finishes.

        Causality gate: a command only executes while its process is not
        ahead of the earliest pending event in the queue.  Without the
        gate, a process running ahead of global time would mutate shared
        state (the per-node NIC availability, ANY_SOURCE mailboxes) out of
        time order and other processes would observe effects "from the
        future".  A gated command is stashed on the process and re-issued
        when the queue catches up.
        """
        gen = proc.gen
        assert gen is not None
        value = proc.pending_value
        proc.pending_value = None
        cmd: Command | None = proc.pending_cmd
        proc.pending_cmd = None
        proc.blocked = None
        # Hot-loop locals: these attributes are stable across the run and
        # each dotted lookup costs a dict probe per command otherwise.
        # _live is constant within one _run_proc activation (it changes
        # only when *this* process finishes, which returns immediately);
        # the queue frontier is not (sends may wake peers), so it is
        # re-read from the queue each iteration.
        queue = self._queue
        gate = self._live > 1
        sink = self.sink
        injector = self.injector
        prof = self.profiler
        send = gen.send
        if self._quiet:
            do_send = self._do_send_quiet
            finish = self._finish_delivery_quiet
        else:
            # self.__dict__ lookups first, so instance-level monkeypatches
            # (the mutant tests) keep intercepting the hot path.
            do_send = self._do_send
            finish = self._finish_delivery
        while True:
            if cmd is None:
                if prof is not None:
                    # "proc.advance" is the inline execution of process
                    # code between two commands — the sync algorithms'
                    # compute (fitting, offset math, clock reads) lands
                    # here, with finer zones nested by those layers.
                    start = prof.push("proc.advance")
                    try:
                        cmd = send(value)
                    except StopIteration as stop:
                        prof.pop(start)
                        proc.finished = True
                        proc.result = stop.value
                        self._live -= 1
                        return
                    prof.pop(start)
                else:
                    try:
                        cmd = send(value)
                    except StopIteration as stop:
                        proc.finished = True
                        proc.result = stop.value
                        self._live -= 1
                        return
                value = None
            if gate and proc.now > queue.frontier:
                # Ahead of the frontier: defer until the queue catches up.
                # With a single live process there is nobody left to
                # observe shared state out of order, so the round-trip
                # through the queue is skipped entirely.
                proc.pending_cmd = cmd
                self.gate_deferrals += 1
                self._schedule(proc, proc.now)
                return
            cls = type(cmd)
            if cls is SendCmd:
                if prof is not None:
                    start = prof.push("engine.send")
                    do_send(proc, cmd)
                    prof.pop(start)
                else:
                    do_send(proc, cmd)
                if cmd.synchronous:
                    # Sender parks until the receiver matches (rendezvous).
                    proc.blocked = "ssend"
                    return
            elif cls is RecvCmd:
                start = prof.push("engine.recv") if prof is not None else 0
                msg = self._match_mailbox(proc, cmd.source, cmd.tag)
                if msg is None:
                    proc.blocked = RecvDescriptor(
                        proc.rank, cmd.source, cmd.tag, proc.now
                    )
                    proc.block_time = proc.now
                    if sink is not None:
                        sink.emit(obs_events.ProcBlock(
                            time=proc.now, rank=proc.rank, reason="recv",
                            source=cmd.source, tag=cmd.tag,
                        ))
                    if prof is not None:
                        prof.pop(start)
                    return
                if msg.arrival > proc.now:
                    proc.now = msg.arrival
                value = finish(proc, msg)
                if prof is not None:
                    prof.pop(start)
            elif cls is SendRecvCmd:
                if prof is not None:
                    start = prof.push("engine.send")
                    do_send(proc, cmd)
                    prof.pop(start)
                else:
                    do_send(proc, cmd)
                # Receive half: loop back with a synthesized RecvCmd so
                # the causality gate is re-evaluated between the halves
                # at exactly the point the unfused SendCmd/RecvCmd pair
                # would have re-entered it (the send advanced proc.now).
                cmd = RecvCmd(cmd.source, cmd.recv_tag)
                continue
            elif cls is ElapseCmd:
                # duration >= 0 is guaranteed by ElapseCmd construction.
                duration = cmd.duration
                if injector is not None and duration > 0.0:
                    # Straggler faults: compute runs slower in the window.
                    duration = injector.perturb_compute(
                        proc.now, proc.rank, duration, proc.get_rng()
                    )
                proc.now += duration
            elif cls is WaitUntilCmd:
                if cmd.true_time > proc.now:
                    proc.now = cmd.true_time
            else:
                raise SimulationError(f"unknown command {cmd!r}")
            cmd = None

    # ------------------------------------------------------------------
    # Point-to-point mechanics
    # ------------------------------------------------------------------
    def _do_send(self, proc: _Proc, cmd: SendCmd | SendRecvCmd) -> None:
        if not 0 <= cmd.dest < len(self._procs):
            raise MatchingError(f"send to invalid rank {cmd.dest}")
        # Hot-path locals (one message = one _do_send call).
        network = self.network
        sink = self.sink
        metrics = self.metrics
        bank = self.timeseries
        injector = self.injector
        prof = self.profiler
        pool = proc.pool
        if pool is None:
            pool = self._pool_of(proc)
        level_cache = self._level_cache
        pair = proc.rank * self._rank_stride + cmd.dest
        level = level_cache.get(pair)
        if level is None:
            level = level_cache[pair] = self.level_of(proc.rank, cmd.dest)
        send_time = proc.now
        seq = self._msg_seq
        self._msg_seq = seq + 1
        self.messages_sent += 1
        self.bytes_sent += cmd.size
        if sink is not None:
            t0 = prof.clock() if prof is not None else 0
            sink.emit(obs_events.MsgSend(
                time=send_time, rank=proc.rank, dest=cmd.dest, tag=cmd.tag,
                size=cmd.size, seq=seq, level=level.name,
                synchronous=cmd.synchronous,
            ))
            if cmd.synchronous:
                sink.emit(obs_events.ProcBlock(
                    time=send_time, rank=proc.rank, reason="ssend",
                    source=cmd.dest, tag=cmd.tag,
                ))
            if prof is not None:
                # Sink overhead (incl. an attached sanitizer behind a
                # TeeSink) accounted where it is paid.
                prof.add("obs.sink", prof.clock() - t0)
        if cmd.synchronous:
            self.rendezvous_stalls += 1
            proc.block_time = send_time
        if metrics is not None:
            metrics.counter("engine.messages.sent", proc.rank).inc()
            metrics.counter("engine.bytes.sent",
                            proc.rank).inc(cmd.size)
            if cmd.synchronous:
                metrics.counter("engine.rendezvous.stalls",
                                proc.rank).inc()
        proc.now += network.o_send
        t0 = prof.clock() if prof is not None else 0
        if self.delay_mode == "scalar":
            delay = network.delay_from_pool(level, cmd.size, pool)
        else:
            delay = network.base_delay(level, cmd.size) + self._burst_next(
                proc, level, pool
            )
        if injector is not None:
            # Link faults: windowed degradation of the delay draw (a
            # directed fault keys on this message's (src, dst) pair).
            delay = injector.perturb_delay(
                send_time, level, delay, proc.get_rng(),
                src=proc.rank, dst=cmd.dest,
            )
        nodes = self._node_cache
        if (
            self.extra_node_latency is not None
            and level == Level.REMOTE
        ):
            delay += self.extra_node_latency(
                nodes[proc.rank], nodes[cmd.dest]
            )
        arrival = send_time + network.o_send + delay
        gap = network.nic_gap
        if gap > 0.0 and level == Level.REMOTE:
            # Egress: messages leaving a node serialize at its NIC.
            src_node = nodes[proc.rank]
            egress_gap = gap
            if injector is not None:
                # NIC storm faults: the serialization gap grows.
                egress_gap = gap * injector.nic_gap_factor(
                    proc.now, src_node
                )
            inject = max(proc.now, self._nic_egress.get(src_node, 0.0))
            self._nic_egress[src_node] = inject + egress_gap
            # Congestion: delay variance grows with the backlog this
            # message found at the NIC (queueing, adaptive routing...).
            backlog = (inject - proc.now) / egress_gap
            cj = network.congestion_jitter
            if cj > 0.0 and backlog > 0.0:
                delay += cj * backlog * -log1p(-pool.next())
            arrival = inject + egress_gap + delay
            # Ingress: arrivals at the destination node serialize too.
            dst_node = nodes[cmd.dest]
            ingress_gap = gap
            if injector is not None:
                ingress_gap = gap * injector.nic_gap_factor(
                    proc.now, dst_node
                )
            arrival = max(arrival, self._nic_ingress.get(dst_node, 0.0))
            self._nic_ingress[dst_node] = arrival + ingress_gap
            if sink is not None and backlog > 0.0:
                sink.emit(obs_events.NicQueue(
                    time=send_time, rank=proc.rank, node=src_node,
                    backlog=backlog, inject_time=inject,
                ))
            if metrics is not None:
                metrics.histogram("engine.nic.backlog").observe(
                    max(0.0, backlog)
                )
            if bank is not None and backlog > 0.0:
                bank.sample(
                    "engine.nic.backlog", send_time, backlog,
                    rank=proc.rank,
                )
        if prof is not None:
            # Delay draw + fault perturbation + NIC serialization model:
            # the per-message network pricing (vectorized in burst mode).
            prof.add("net.delay", prof.clock() - t0)
        payload = cmd.payload
        if injector is not None and injector.perturbs_payloads:
            # Byzantine adversaries: the sender's wire payload may lie
            # (timestamp tampering at the sync-message boundary).  Only
            # adversarial injectors set the flag, so plain fault
            # schedules never pay for (or draw RNG in) this hook.
            payload = injector.perturb_payload(
                send_time, proc.rank, cmd.dest, cmd.tag, payload,
                proc.get_rng(),
            )
        msg = Message(
            source=proc.rank,
            dest=cmd.dest,
            tag=cmd.tag,
            payload=payload,
            size=cmd.size,
            send_time=send_time,
            arrival=arrival,
            seq=seq,
            sync_sender=proc if cmd.synchronous else None,
        )
        dest = self._procs[cmd.dest]
        blocked = dest.blocked
        if isinstance(blocked, RecvDescriptor) and msg.matches(
            blocked.source, blocked.tag
        ):
            # Wake the receiver: it resumes once the message arrives.
            dest.blocked = None
            dest.pending_value = None
            resume_at = max(dest.now, msg.arrival)
            dest.now = resume_at
            if sink is not None:
                sink.emit(obs_events.ProcWake(
                    time=resume_at, rank=dest.rank,
                    cause="deliver", seq=seq,
                ))
            dest.pending_value = self._finish_delivery(dest, msg)
            self._schedule(dest, resume_at)
        else:
            dest.mailbox.append(msg)
            depth = len(dest.mailbox)
            if depth > self.max_mailbox_depth:
                self.max_mailbox_depth = depth
            if metrics is not None:
                metrics.histogram("engine.mailbox.depth",
                                  dest.rank).observe(depth)

    def _do_send_quiet(self, proc: _Proc, cmd: SendCmd | SendRecvCmd) -> None:
        """Observation-free twin of :meth:`_do_send`.

        Selected (with :meth:`_finish_delivery_quiet`) when ``_quiet`` is
        set: no sink, metrics bank, timeseries, fault injector, profiler,
        or fabric-pricing hook is attached.  Every RNG draw and every
        piece of simulation state (times, NIC egress/ingress, mailboxes,
        counters) is touched in exactly the order of the full path, so
        results are bit-identical — only the hook branches are gone.
        Keep the two in lockstep when changing either.
        """
        if not 0 <= cmd.dest < len(self._procs):
            raise MatchingError(f"send to invalid rank {cmd.dest}")
        network = self.network
        pool = proc.pool
        if pool is None:
            pool = self._pool_of(proc)
        level_cache = self._level_cache
        pair = proc.rank * self._rank_stride + cmd.dest
        level = level_cache.get(pair)
        if level is None:
            level = level_cache[pair] = self.level_of(proc.rank, cmd.dest)
        send_time = proc.now
        seq = self._msg_seq
        self._msg_seq = seq + 1
        self.messages_sent += 1
        self.bytes_sent += cmd.size
        if cmd.synchronous:
            self.rendezvous_stalls += 1
            proc.block_time = send_time
        proc.now += network.o_send
        if self.delay_mode == "scalar":
            delay = network.delay_from_pool(level, cmd.size, pool)
        else:
            delay = network.base_delay(level, cmd.size) + self._burst_next(
                proc, level, pool
            )
        arrival = send_time + network.o_send + delay
        gap = network.nic_gap
        if gap > 0.0 and level == Level.REMOTE:
            nodes = self._node_cache
            src_node = nodes[proc.rank]
            inject = max(proc.now, self._nic_egress.get(src_node, 0.0))
            self._nic_egress[src_node] = inject + gap
            backlog = (inject - proc.now) / gap
            cj = network.congestion_jitter
            if cj > 0.0 and backlog > 0.0:
                delay += cj * backlog * -log1p(-pool.next())
            arrival = inject + gap + delay
            dst_node = nodes[cmd.dest]
            ingress_free = self._nic_ingress.get(dst_node, 0.0)
            if ingress_free > arrival:
                arrival = ingress_free
            self._nic_ingress[dst_node] = arrival + gap
        msg = Message(
            source=proc.rank,
            dest=cmd.dest,
            tag=cmd.tag,
            payload=cmd.payload,
            size=cmd.size,
            send_time=send_time,
            arrival=arrival,
            seq=seq,
            sync_sender=proc if cmd.synchronous else None,
        )
        dest = self._procs[cmd.dest]
        blocked = dest.blocked
        if type(blocked) is RecvDescriptor and msg.matches(
            blocked.source, blocked.tag
        ):
            dest.blocked = None
            resume_at = dest.now
            if msg.arrival > resume_at:
                resume_at = msg.arrival
            dest.now = resume_at
            dest.pending_value = self._finish_delivery_quiet(dest, msg)
            self._schedule(dest, resume_at)
        else:
            dest.mailbox.append(msg)
            depth = len(dest.mailbox)
            if depth > self.max_mailbox_depth:
                self.max_mailbox_depth = depth

    def _finish_delivery_quiet(self, proc: _Proc, msg: Message) -> Message:
        """Observation-free twin of :meth:`_finish_delivery`."""
        proc.now += self.network.o_recv
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        sender = msg.sync_sender
        if sender is not None:
            pair = msg.dest * self._rank_stride + msg.source
            level = self._level_cache.get(pair)
            if level is None:
                level = self._level_cache[pair] = self.level_of(
                    msg.dest, msg.source
                )
            pool = proc.pool
            if pool is None:
                pool = self._pool_of(proc)
            ack_delay = self.network.delay_from_pool(level, 8, pool)
            resume_at = max(proc.now, msg.arrival) + ack_delay
            sender.now = max(sender.now, resume_at)
            sender.blocked = None
            self._schedule(sender, sender.now)
            msg.sync_sender = None
        return msg

    def _burst_next(
        self, proc: _Proc, level: Level, pool: UniformPool
    ) -> float:
        """Next precomputed stochastic delay addend for (proc, level).

        Burst mode refills a per-(process, level) buffer of
        ``delay_burst`` addends in one vectorized pass (see
        :meth:`NetworkModel.stochastic_burst`), then hands them out by
        cursor.  The ack path and congestion draws stay scalar — they are
        rare and share the pool's stream either way.
        """
        bursts = proc.bursts
        if bursts is None:
            bursts = proc.bursts = [None, None, None, None]
        state = bursts[level]
        if state is None or state[1] >= len(state[0]):
            buf = self.network.stochastic_burst(
                level, self.delay_burst, pool
            )
            state = bursts[level] = [buf, 0]
        buf, idx = state
        state[1] = idx + 1
        return buf[idx]

    def _match_mailbox(self, proc: _Proc, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(proc.mailbox):
            if msg.matches(source, tag):
                del proc.mailbox[i]
                return msg
        return None

    def _finish_delivery(self, proc: _Proc, msg: Message) -> Message:
        """Charge receive overhead and release a rendezvous sender."""
        prof = self.profiler
        # Binding-edge detection for the causal DAG: both call paths
        # assign (never compute past) the arrival when the receiver had
        # to wait for this message, so exact equality is reliable here.
        waited = proc.now == msg.arrival
        proc.now += self.network.o_recv
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        if self.sink is not None:
            t0 = prof.clock() if prof is not None else 0
            self.sink.emit(obs_events.MsgDeliver(
                time=proc.now, rank=proc.rank, source=msg.source,
                tag=msg.tag, size=msg.size, seq=msg.seq,
                latency=proc.now - msg.send_time,
                arrival=msg.arrival, waited=waited,
            ))
            if prof is not None:
                prof.add("obs.sink", prof.clock() - t0)
        if self.metrics is not None:
            self.metrics.counter("engine.messages.delivered",
                                 proc.rank).inc()
            self.metrics.counter("engine.bytes.delivered",
                                 proc.rank).inc(msg.size)
        sender = msg.sync_sender
        if sender is not None:
            # The ack travels back; the sender resumes after its arrival.
            pair = msg.dest * self._rank_stride + msg.source
            level = self._level_cache.get(pair)
            if level is None:
                level = self._level_cache[pair] = self.level_of(
                    msg.dest, msg.source
                )
            pool = proc.pool
            if pool is None:
                pool = self._pool_of(proc)
            t0 = prof.clock() if prof is not None else 0
            ack_delay = self.network.delay_from_pool(level, 8, pool)
            if self.injector is not None:
                # The ack travels receiver → original sender.
                ack_delay = self.injector.perturb_delay(
                    proc.now, level, ack_delay, proc.get_rng(),
                    src=msg.dest, dst=msg.source,
                )
            if prof is not None:
                prof.add("net.delay", prof.clock() - t0)
            resume_at = max(proc.now, msg.arrival) + ack_delay
            sender.now = max(sender.now, resume_at)
            sender.blocked = None
            if self.sink is not None:
                self.sink.emit(obs_events.ProcWake(
                    time=sender.now, rank=sender.rank,
                    cause="ack", seq=msg.seq,
                ))
            if self.metrics is not None:
                self.metrics.histogram(
                    "engine.rendezvous.stall_time", sender.rank
                ).observe(sender.now - sender.block_time)
            self._schedule(sender, sender.now)
            msg.sync_sender = None
        return msg

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def blocked_ranks(self) -> Iterable[int]:
        """Ranks currently blocked (valid only mid-run; for debugging)."""
        return [p.rank for p in self._procs if p.blocked is not None]

    def stats(self) -> dict[str, int]:
        """Snapshot of the engine's built-in counters.

        Always available (no sink or registry required); the counters are
        plain integer adds on paths the engine executes anyway.  Counter
        semantics are identical for every event-queue kind (the
        kernel-equivalence tests pin this), so health reports stay
        comparable across kernels; the kind itself is exposed as the
        ``event_queue`` attribute, not here (stats stay int-valued).
        """
        return {
            "num_ranks": len(self._procs),
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_unreceived": self.messages_unreceived,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "rendezvous_stalls": self.rendezvous_stalls,
            "max_mailbox_depth": self.max_mailbox_depth,
            "gate_deferrals": self.gate_deferrals,
            "events_processed": self.events_processed,
            "max_queue_depth": self.max_queue_depth,
        }
