"""Deterministic discrete-event engine for simulated MPI processes.

Each simulated process is a Python generator that *carries its own current
true time* (``ProcessContext.now``) and yields command objects:

* :class:`SendCmd` — deposit a message (eager or rendezvous),
* :class:`RecvCmd` — blocking receive with source/tag matching,
* :class:`ElapseCmd` / :class:`WaitUntilCmd` — advance local time.

The engine executes a process *inline* until it blocks on an unmatched
receive or a rendezvous acknowledgement — with a **causality gate**: a
command only executes while its process is not ahead of the earliest
pending event, otherwise it is deferred and re-issued when the heap
catches up.  The gate makes execution order equal to simulated-time order,
which keeps shared state (per-node NIC availability, ``ANY_SOURCE``
mailboxes) causal while still letting uncontended message chains run
inline without heap churn.

Determinism: heap ties are broken by a monotonic sequence number, and all
randomness flows from per-process `numpy` generators spawned from a single
:class:`numpy.random.SeedSequence` — identical seeds give bit-identical
simulations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from math import log1p
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

import numpy as np

from repro.errors import DeadlockError, MatchingError, SimulationError
from repro.obs import events as obs_events
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesBank
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, RecvDescriptor
from repro.simmpi.network import Level, NetworkModel
from repro.simmpi.rngpool import DEFAULT_CHUNK, UniformPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.prof.core import Profiler


# ----------------------------------------------------------------------
# Commands a process generator may yield
# ----------------------------------------------------------------------
@dataclass
class SendCmd:
    """Send ``payload`` (``size`` bytes on the wire) to global rank ``dest``.

    ``synchronous=True`` models ``MPI_Ssend``: the sender blocks until the
    receiver has matched the message, then pays one ack latency.

    ``size`` is validated here, at construction, so a negative size can
    never reach the delay/``bytes_sent`` accounting paths — the network
    model's per-message ``delay`` call stays check-free.
    """

    dest: int
    tag: int
    payload: Any = None
    size: int = 8
    synchronous: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(
                f"message size must be >= 0, got {self.size}"
            )


@dataclass
class RecvCmd:
    """Blocking receive; yields back the matched :class:`Message`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class ElapseCmd:
    """Consume ``duration`` seconds of local computation.

    Negative durations are rejected at construction (the engine's command
    loop no longer re-checks per execution).
    """

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError("cannot elapse a negative duration")


@dataclass
class WaitUntilCmd:
    """Sleep until the given *true* time (no-op if already past)."""

    true_time: float


Command = SendCmd | RecvCmd | ElapseCmd | WaitUntilCmd


class _Proc:
    """Engine-internal bookkeeping for one simulated process."""

    __slots__ = (
        "rank",
        "gen",
        "now",
        "blocked",
        "pending_value",
        "pending_cmd",
        "finished",
        "result",
        "rng",
        "pool",
        "mailbox",
        "recv_wait",
        "block_time",
    )

    def __init__(
        self, rank: int, rng: np.random.Generator, pool: UniformPool
    ) -> None:
        self.rank = rank
        self.gen: Generator[Command, Any, Any] | None = None
        self.now = 0.0
        #: RecvDescriptor while blocked on an unmatched receive, the string
        #: "ssend" while waiting for a rendezvous ack, or None when runnable.
        self.blocked: RecvDescriptor | str | None = None
        self.pending_value: Any = None
        #: Command pulled from the generator but deferred by the causality
        #: gate (the process was ahead of the global event frontier).
        self.pending_cmd: Command | None = None
        self.finished = False
        self.result: Any = None
        self.rng = rng
        #: Chunked uniform pool feeding this process's message-delay
        #: draws; a dedicated stream (spawned from the same per-process
        #: seed) so pool prefetching never steals draws from ``rng``.
        self.pool = pool
        #: Messages deposited for this rank, in send order.
        self.mailbox: list[Message] = []
        self.recv_wait: RecvDescriptor | None = None
        #: True time at which the process last blocked (diagnostics).
        self.block_time = 0.0


class Engine:
    """Event loop coordinating all simulated processes of one MPI job."""

    def __init__(
        self,
        network: NetworkModel,
        level_of: Callable[[int, int], Level],
        seed: int | np.random.SeedSequence = 0,
        max_true_time: float = 1e7,
        node_of: Callable[[int], int] | None = None,
        extra_node_latency: Callable[[int, int], float] | None = None,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        timeseries: TimeSeriesBank | None = None,
        injector: "FaultInjector | None" = None,
        rng_pool_chunk: int = DEFAULT_CHUNK,
        profiler: "Profiler | None" = None,
    ) -> None:
        self.network = network
        self.level_of = level_of
        #: Maps a rank to its node id; required for NIC-gap modelling.
        self.node_of = node_of or (lambda rank: 0)
        #: Fabric hook: extra one-way latency between two *nodes* (torus
        #: hop costs etc.); applied to REMOTE messages only.
        self.extra_node_latency = extra_node_latency
        #: Per-node NIC next-free times (egress and ingress serialization).
        self._nic_egress: dict[int, float] = {}
        self._nic_ingress: dict[int, float] = {}
        self.max_true_time = float(max_true_time)
        self._seedseq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._procs: list[_Proc] = []
        self._heap: list[tuple[float, int, int]] = []  # (time, seq, rank)
        self._seq = itertools.count()
        self._msg_seq = itertools.count()
        self._started = False
        #: Chunk size of the per-process delay-draw pools (a pure perf
        #: knob: results are bit-identical for any value, see rngpool).
        self.rng_pool_chunk = rng_pool_chunk
        #: Unfinished processes; the causality gate is skipped once only
        #: one process remains (no shared state left to keep causal).
        self._live = 0
        #: Commands deferred by the causality gate (heap round-trips).
        self.gate_deferrals = 0
        #: ``rank -> node`` resolved once at run() (hot-path cache).
        self._node_cache: list[int] = []
        #: ``(src, dest) -> Level`` memo of ``level_of`` (hot-path cache).
        self._level_cache: dict[tuple[int, int], Level] = {}
        #: Optional observability hooks (see :mod:`repro.obs`).  Both are
        #: passive; with ``sink=None`` the emission sites reduce to one
        #: pointer comparison (the zero-overhead fast path).
        self.sink = sink
        self.metrics = metrics
        #: Optional clock-health telemetry bank (see
        #: :mod:`repro.obs.timeseries`); same passivity contract.
        self.timeseries = timeseries
        #: Optional fault injector (see :mod:`repro.faults`): perturbs
        #: delay draws, NIC gaps, and compute intervals at scheduled true
        #: times.  ``None`` keeps every hot path on its fault-free branch.
        self.injector = injector
        #: Optional wall-time self-profiler (see :mod:`repro.prof`).
        #: Profiling only reads the host clock — it never draws
        #: randomness or advances virtual time, so profiled runs are
        #: bit-identical to unprofiled ones; with ``None`` every
        #: instrumentation site is one pointer comparison.
        self.profiler = profiler
        #: Monotonically increasing count of delivered messages (stats).
        self.messages_delivered = 0
        #: Payload bytes of all delivered messages.
        self.bytes_delivered = 0
        #: Messages injected (sent), including ones still in flight.
        self.messages_sent = 0
        #: Payload bytes injected into the network.
        self.bytes_sent = 0
        #: Synchronous sends that had to park waiting for their match.
        self.rendezvous_stalls = 0
        #: Deepest mailbox (unmatched-message queue) seen during the run.
        self.max_mailbox_depth = 0
        #: Messages still sitting in mailboxes when the run completed
        #: (sent but never received; finalized at the end of run()).
        self.messages_unreceived = 0
        #: Events popped off the pending-event heap (loop iterations).
        self.events_processed = 0
        #: Deepest pending-event heap seen during the run.
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_process(self) -> int:
        """Reserve a rank and its RNG; returns the new global rank.

        Each process gets two independent streams spawned from its own
        child seed: ``rng`` (algorithm-visible randomness — poll slack,
        fault perturbations) and a pooled stream dedicated to message-
        delay draws.  Keeping them separate means pool prefetching can
        never shift draws seen by algorithm-level consumers.
        """
        if self._started:
            raise SimulationError("cannot add processes after run() started")
        rank = len(self._procs)
        child = self._seedseq.spawn(1)[0]
        rng = np.random.default_rng(child)
        pool = UniformPool(
            np.random.default_rng(child.spawn(1)[0]), self.rng_pool_chunk
        )
        self._procs.append(_Proc(rank, rng, pool))
        return rank

    def bind(self, rank: int, gen: Generator[Command, Any, Any]) -> None:
        """Attach the generator body for a previously added rank."""
        proc = self._procs[rank]
        if proc.gen is not None:
            raise SimulationError(f"rank {rank} already has a body")
        proc.gen = gen

    @property
    def num_ranks(self) -> int:
        """Number of processes registered with the engine."""
        return len(self._procs)

    def proc_now(self, rank: int) -> float:
        """Current true time of a process (used by ProcessContext)."""
        return self._procs[rank].now

    def set_proc_now(self, rank: int, value: float) -> None:
        """Advance a process's local true time (ProcessContext hook)."""
        self._procs[rank].now = value

    def rng_of(self, rank: int) -> np.random.Generator:
        """The per-process random stream (deterministic per seed)."""
        return self._procs[rank].rng

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Run every process to completion; returns per-rank return values."""
        if self._started:
            raise SimulationError("engine can only run once")
        self._started = True
        prof = self.profiler
        if prof is None:
            return self._run()
        start = prof.push("engine.run")
        try:
            return self._run()
        finally:
            prof.pop(start)

    def _run(self) -> list[Any]:
        if self.injector is not None:
            # The schedule is known a priori: emit one record per fault
            # so traces show fault windows at their exact virtual times.
            events = self.injector.schedule_events()
            if self.sink is not None:
                for event in events:
                    self.sink.emit(event)
            if self.metrics is not None and events:
                self.metrics.counter("faults.scheduled").inc(len(events))
            if self.timeseries is not None:
                # Fault markers anchor the resync-latency detector; they
                # are rank-agnostic (a fault hits a node/level, and the
                # error series of every rank may react to it).
                for event in events:
                    self.timeseries.mark(
                        "fault", event.time,
                        f"{event.kind}:{event.name}@{event.target}",
                    )
        for proc in self._procs:
            if proc.gen is None:
                raise SimulationError(f"rank {proc.rank} has no body bound")
            self._schedule(proc, 0.0)
        # Resolve topology lookups once: placements are immutable, so the
        # rank->node and (src, dest)->level maps are pure functions.  The
        # node cache is a flat list; levels memoize lazily (only pairs
        # that actually communicate are materialized).
        self._node_cache = [
            self.node_of(rank) for rank in range(len(self._procs))
        ]
        self._level_cache.clear()
        self._live = len(self._procs)

        heap = self._heap
        procs = self._procs
        max_true_time = self.max_true_time
        bank = self.timeseries
        events = 0
        try:
            while heap:
                t, _, rank = heapq.heappop(heap)
                events += 1
                depth = len(heap)
                if depth > self.max_queue_depth:
                    self.max_queue_depth = depth
                if bank is not None and not events & 63:
                    # Event-queue pressure telemetry: sampled every 64
                    # pops so health reports can show heap depth next to
                    # NIC backlog without touching the per-event cost.
                    bank.sample(
                        "engine.events.queue_depth", t, float(depth)
                    )
                    bank.sample(
                        "engine.events.processed", t, float(events)
                    )
                proc = procs[rank]
                if proc.finished:
                    continue
                if t > max_true_time:
                    raise SimulationError(
                        f"simulation exceeded max_true_time={max_true_time}"
                    )
                if t > proc.now:
                    proc.now = t
                self._run_proc(proc)
        finally:
            self.events_processed += events

        unfinished = [p.rank for p in self._procs if not p.finished]
        if unfinished:
            states = {
                p.rank: p.blocked for p in self._procs if p.rank in unfinished
            }
            # An attached sanitizer (see repro.check) can name the
            # blocked-wait cycle; without one the raw states must do.
            diagnose = getattr(self.sink, "deadlock_diagnosis", None)
            detail = f"\n{diagnose(self)}" if diagnose is not None else ""
            raise DeadlockError(
                f"deadlock: ranks {unfinished} blocked with states "
                f"{states}{detail}"
            )
        self.messages_unreceived = sum(len(p.mailbox) for p in procs)
        return [p.result for p in self._procs]

    def _schedule(self, proc: _Proc, time: float) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), proc.rank))

    def _run_proc(self, proc: _Proc) -> None:
        """Step ``proc`` inline until it blocks, defers, or finishes.

        Causality gate: a command only executes while its process is not
        ahead of the earliest pending event in the heap.  Without the
        gate, a process running ahead of global time would mutate shared
        state (the per-node NIC availability, ANY_SOURCE mailboxes) out of
        time order and other processes would observe effects "from the
        future".  A gated command is stashed on the process and re-issued
        when the heap catches up.
        """
        gen = proc.gen
        assert gen is not None
        value = proc.pending_value
        proc.pending_value = None
        cmd: Command | None = proc.pending_cmd
        proc.pending_cmd = None
        proc.blocked = None
        # Hot-loop locals: these attributes are stable across the run and
        # each dotted lookup costs a dict probe per command otherwise.
        heap = self._heap
        sink = self.sink
        injector = self.injector
        prof = self.profiler
        send = gen.send
        while True:
            if cmd is None:
                if prof is not None:
                    # "proc.advance" is the inline execution of process
                    # code between two commands — the sync algorithms'
                    # compute (fitting, offset math, clock reads) lands
                    # here, with finer zones nested by those layers.
                    start = prof.push("proc.advance")
                    try:
                        cmd = send(value)
                    except StopIteration as stop:
                        prof.pop(start)
                        proc.finished = True
                        proc.result = stop.value
                        self._live -= 1
                        return
                    prof.pop(start)
                else:
                    try:
                        cmd = send(value)
                    except StopIteration as stop:
                        proc.finished = True
                        proc.result = stop.value
                        self._live -= 1
                        return
                value = None
            if heap and proc.now > heap[0][0] and self._live > 1:
                # Ahead of the frontier: defer until the heap catches up.
                # With a single live process there is nobody left to
                # observe shared state out of order, so the round-trip
                # through the heap is skipped entirely.
                proc.pending_cmd = cmd
                self.gate_deferrals += 1
                self._schedule(proc, proc.now)
                return
            if type(cmd) is SendCmd:
                if prof is not None:
                    start = prof.push("engine.send")
                    self._do_send(proc, cmd)
                    prof.pop(start)
                else:
                    self._do_send(proc, cmd)
                if cmd.synchronous:
                    # Sender parks until the receiver matches (rendezvous).
                    proc.blocked = "ssend"
                    return
            elif type(cmd) is RecvCmd:
                start = prof.push("engine.recv") if prof is not None else 0
                msg = self._match_mailbox(proc, cmd.source, cmd.tag)
                if msg is None:
                    proc.blocked = RecvDescriptor(
                        proc.rank, cmd.source, cmd.tag, proc.now
                    )
                    proc.block_time = proc.now
                    if sink is not None:
                        sink.emit(obs_events.ProcBlock(
                            time=proc.now, rank=proc.rank, reason="recv",
                            source=cmd.source, tag=cmd.tag,
                        ))
                    if prof is not None:
                        prof.pop(start)
                    return
                value = self._complete_recv(proc, msg)
                if prof is not None:
                    prof.pop(start)
            elif type(cmd) is ElapseCmd:
                # duration >= 0 is guaranteed by ElapseCmd construction.
                duration = cmd.duration
                if injector is not None and duration > 0.0:
                    # Straggler faults: compute runs slower in the window.
                    duration = injector.perturb_compute(
                        proc.now, proc.rank, duration, proc.rng
                    )
                proc.now += duration
            elif type(cmd) is WaitUntilCmd:
                if cmd.true_time > proc.now:
                    proc.now = cmd.true_time
            else:
                raise SimulationError(f"unknown command {cmd!r}")
            cmd = None

    # ------------------------------------------------------------------
    # Point-to-point mechanics
    # ------------------------------------------------------------------
    def _do_send(self, proc: _Proc, cmd: SendCmd) -> None:
        if not 0 <= cmd.dest < len(self._procs):
            raise MatchingError(f"send to invalid rank {cmd.dest}")
        # Hot-path locals (one message = one _do_send call).
        network = self.network
        sink = self.sink
        metrics = self.metrics
        bank = self.timeseries
        injector = self.injector
        prof = self.profiler
        pool = proc.pool
        level_cache = self._level_cache
        pair = (proc.rank, cmd.dest)
        level = level_cache.get(pair)
        if level is None:
            level = level_cache[pair] = self.level_of(proc.rank, cmd.dest)
        send_time = proc.now
        seq = next(self._msg_seq)
        self.messages_sent += 1
        self.bytes_sent += cmd.size
        if sink is not None:
            t0 = prof.clock() if prof is not None else 0
            sink.emit(obs_events.MsgSend(
                time=send_time, rank=proc.rank, dest=cmd.dest, tag=cmd.tag,
                size=cmd.size, seq=seq, level=level.name,
                synchronous=cmd.synchronous,
            ))
            if cmd.synchronous:
                sink.emit(obs_events.ProcBlock(
                    time=send_time, rank=proc.rank, reason="ssend",
                    source=cmd.dest, tag=cmd.tag,
                ))
            if prof is not None:
                # Sink overhead (incl. an attached sanitizer behind a
                # TeeSink) accounted where it is paid.
                prof.add("obs.sink", prof.clock() - t0)
        if cmd.synchronous:
            self.rendezvous_stalls += 1
            proc.block_time = send_time
        if metrics is not None:
            metrics.counter("engine.messages.sent", proc.rank).inc()
            metrics.counter("engine.bytes.sent",
                            proc.rank).inc(cmd.size)
            if cmd.synchronous:
                metrics.counter("engine.rendezvous.stalls",
                                proc.rank).inc()
        proc.now += network.o_send
        t0 = prof.clock() if prof is not None else 0
        delay = network.delay_from_pool(level, cmd.size, pool)
        if injector is not None:
            # Link faults: windowed degradation of the delay draw.
            delay = injector.perturb_delay(
                send_time, level, delay, proc.rng
            )
        nodes = self._node_cache
        if (
            self.extra_node_latency is not None
            and level == Level.REMOTE
        ):
            delay += self.extra_node_latency(
                nodes[proc.rank], nodes[cmd.dest]
            )
        arrival = send_time + network.o_send + delay
        gap = network.nic_gap
        if gap > 0.0 and level == Level.REMOTE:
            # Egress: messages leaving a node serialize at its NIC.
            src_node = nodes[proc.rank]
            egress_gap = gap
            if injector is not None:
                # NIC storm faults: the serialization gap grows.
                egress_gap = gap * injector.nic_gap_factor(
                    proc.now, src_node
                )
            inject = max(proc.now, self._nic_egress.get(src_node, 0.0))
            self._nic_egress[src_node] = inject + egress_gap
            # Congestion: delay variance grows with the backlog this
            # message found at the NIC (queueing, adaptive routing...).
            backlog = (inject - proc.now) / egress_gap
            cj = network.congestion_jitter
            if cj > 0.0 and backlog > 0.0:
                delay += cj * backlog * -log1p(-pool.next())
            arrival = inject + egress_gap + delay
            # Ingress: arrivals at the destination node serialize too.
            dst_node = nodes[cmd.dest]
            ingress_gap = gap
            if injector is not None:
                ingress_gap = gap * injector.nic_gap_factor(
                    proc.now, dst_node
                )
            arrival = max(arrival, self._nic_ingress.get(dst_node, 0.0))
            self._nic_ingress[dst_node] = arrival + ingress_gap
            if sink is not None and backlog > 0.0:
                sink.emit(obs_events.NicQueue(
                    time=send_time, rank=proc.rank, node=src_node,
                    backlog=backlog, inject_time=inject,
                ))
            if metrics is not None:
                metrics.histogram("engine.nic.backlog").observe(
                    max(0.0, backlog)
                )
            if bank is not None and backlog > 0.0:
                bank.sample(
                    "engine.nic.backlog", send_time, backlog,
                    rank=proc.rank,
                )
        if prof is not None:
            # Delay draw + fault perturbation + NIC serialization model:
            # the per-message network pricing the vectorization ROADMAP
            # item wants to batch.
            prof.add("net.delay", prof.clock() - t0)
        msg = Message(
            source=proc.rank,
            dest=cmd.dest,
            tag=cmd.tag,
            payload=cmd.payload,
            size=cmd.size,
            send_time=send_time,
            arrival=arrival,
            seq=seq,
            sync_sender=proc if cmd.synchronous else None,
        )
        dest = self._procs[cmd.dest]
        blocked = dest.blocked
        if isinstance(blocked, RecvDescriptor) and msg.matches(
            blocked.source, blocked.tag
        ):
            # Wake the receiver: it resumes once the message arrives.
            dest.blocked = None
            dest.pending_value = None
            resume_at = max(dest.now, msg.arrival)
            dest.now = resume_at
            if sink is not None:
                sink.emit(obs_events.ProcWake(
                    time=resume_at, rank=dest.rank
                ))
            dest.pending_value = self._finish_delivery(dest, msg)
            self._schedule(dest, resume_at)
        else:
            dest.mailbox.append(msg)
            depth = len(dest.mailbox)
            if depth > self.max_mailbox_depth:
                self.max_mailbox_depth = depth
            if metrics is not None:
                metrics.histogram("engine.mailbox.depth",
                                  dest.rank).observe(depth)

    def _match_mailbox(self, proc: _Proc, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(proc.mailbox):
            if msg.matches(source, tag):
                del proc.mailbox[i]
                return msg
        return None

    def _complete_recv(self, proc: _Proc, msg: Message) -> Message:
        proc.now = max(proc.now, msg.arrival)
        return self._finish_delivery(proc, msg)

    def _finish_delivery(self, proc: _Proc, msg: Message) -> Message:
        """Charge receive overhead and release a rendezvous sender."""
        prof = self.profiler
        proc.now += self.network.o_recv
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        if self.sink is not None:
            t0 = prof.clock() if prof is not None else 0
            self.sink.emit(obs_events.MsgDeliver(
                time=proc.now, rank=proc.rank, source=msg.source,
                tag=msg.tag, size=msg.size, seq=msg.seq,
                latency=proc.now - msg.send_time,
            ))
            if prof is not None:
                prof.add("obs.sink", prof.clock() - t0)
        if self.metrics is not None:
            self.metrics.counter("engine.messages.delivered",
                                 proc.rank).inc()
            self.metrics.counter("engine.bytes.delivered",
                                 proc.rank).inc(msg.size)
        sender = msg.sync_sender
        if sender is not None:
            # The ack travels back; the sender resumes after its arrival.
            pair = (msg.dest, msg.source)
            level = self._level_cache.get(pair)
            if level is None:
                level = self._level_cache[pair] = self.level_of(
                    msg.dest, msg.source
                )
            t0 = prof.clock() if prof is not None else 0
            ack_delay = self.network.delay_from_pool(level, 8, proc.pool)
            if self.injector is not None:
                ack_delay = self.injector.perturb_delay(
                    proc.now, level, ack_delay, proc.rng
                )
            if prof is not None:
                prof.add("net.delay", prof.clock() - t0)
            resume_at = max(proc.now, msg.arrival) + ack_delay
            sender.now = max(sender.now, resume_at)
            sender.blocked = None
            if self.sink is not None:
                self.sink.emit(obs_events.ProcWake(
                    time=sender.now, rank=sender.rank
                ))
            if self.metrics is not None:
                self.metrics.histogram(
                    "engine.rendezvous.stall_time", sender.rank
                ).observe(sender.now - sender.block_time)
            self._schedule(sender, sender.now)
            msg.sync_sender = None
        return msg

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def blocked_ranks(self) -> Iterable[int]:
        """Ranks currently blocked (valid only mid-run; for debugging)."""
        return [p.rank for p in self._procs if p.blocked is not None]

    def stats(self) -> dict[str, int]:
        """Snapshot of the engine's built-in counters.

        Always available (no sink or registry required); the counters are
        plain integer adds on paths the engine executes anyway.
        """
        return {
            "num_ranks": len(self._procs),
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_unreceived": self.messages_unreceived,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "rendezvous_stalls": self.rendezvous_stalls,
            "max_mailbox_depth": self.max_mailbox_depth,
            "gate_deferrals": self.gate_deferrals,
            "events_processed": self.events_processed,
            "max_queue_depth": self.max_queue_depth,
        }
