"""Minimal nonblocking point-to-point layer.

The substrate's processes are single-threaded generators, so "nonblocking"
communication cannot overlap with computation the way hardware does.  The
semantics provided are the ones MPI guarantees and the paper's algorithms
need: ``isend`` completes locally at once (eager buffered send), and
``irecv`` defers the blocking match to ``wait``.  ``waitall`` completes a
set of requests in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.errors import SimulationError
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.process import ProcessContext


@dataclass
class Request:
    """Handle for an outstanding nonblocking operation."""

    ctx: ProcessContext
    kind: str  # "send" | "recv"
    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    complete: bool = False
    _result: Message | None = field(default=None, repr=False)

    def wait(self) -> Generator[Any, Any, Message | None]:
        """Block until the operation completes; returns the message (recv)."""
        if self.complete:
            return self._result
        if self.kind != "recv":
            raise SimulationError(f"cannot wait on kind {self.kind!r}")
        msg = yield from self.ctx.recv(self.source, self.tag)
        self.complete = True
        self._result = msg
        return msg

    def test(self) -> bool:
        """Non-yielding completion check (sends only; recvs stay pending)."""
        return self.complete


def isend(
    ctx: ProcessContext,
    dest: int,
    tag: int,
    payload: Any = None,
    size: int = 8,
) -> Generator[Any, Any, Request]:
    """Start an eager send; the returned request is already complete."""
    yield from ctx.send(dest, tag, payload, size)
    return Request(ctx=ctx, kind="send", complete=True)


def irecv(
    ctx: ProcessContext,
    source: int = ANY_SOURCE,
    tag: int = ANY_TAG,
) -> Request:
    """Post a receive descriptor; match happens at ``wait``."""
    return Request(ctx=ctx, kind="recv", source=source, tag=tag)


def waitall(requests: list[Request]) -> Generator[Any, Any, list[Message | None]]:
    """Wait for every request, in order; returns their messages."""
    out: list[Message | None] = []
    for req in requests:
        msg = yield from req.wait()
        out.append(msg)
    return out
