"""LogGP-flavoured network model with per-level parameters.

Message transfer time between two processes is::

    delay = latency(level) + size / bandwidth(level) + jitter(level)

where ``level`` classifies the pair by topological distance (same core,
same socket, same node, different node).  Jitter is a shifted-exponential
draw — a light-tailed body with occasional large outliers (congestion/OS
noise), controlled by ``outlier_prob``/``outlier_scale``.  These outliers
are what invalidates window-based measurements in the paper's discussion
(Section II) and what the Round-Time scheme recovers from.

Sender- and receiver-side CPU overheads (``o_send``/``o_recv``) are charged
to the calling process's time line by the engine, matching the LogGP "o"
parameter.

Randomness contract: every stochastic term is derived from *uniform*
variates by explicit inverse-CDF transforms (``Exp(s) = -s·log1p(-U)``),
consuming exactly one uniform per variate.  The engine feeds these from
chunked :class:`~repro.simmpi.rngpool.UniformPool` buffers; the scalar
:meth:`NetworkModel.delay` entry point consumes the same one-uniform-per-
variate pattern straight from a generator, so pooled and scalar execution
produce bit-identical delay sequences for the same seed.

Message-size validation happens where messages are *constructed*
(:class:`~repro.simmpi.engine.SendCmd` rejects negative sizes), not here:
``delay`` is the per-message hot path and stays branch-minimal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from math import log1p

import numpy as np

from repro.simmpi.rngpool import UniformPool

#: Entries kept in the per-model ``(level, size) -> base delay`` cache
#: before it is reset.  Sync workloads use a handful of distinct message
#: sizes, so the cache almost never cycles; the bound only guards against
#: adversarial size churn growing memory without limit.
_BASE_CACHE_LIMIT = 4096


class Level(enum.IntEnum):
    """Topological distance between two communicating processes."""

    SELF = 0
    SOCKET = 1
    NODE = 2
    REMOTE = 3


@dataclass(frozen=True)
class LinkParams:
    """Latency/bandwidth/jitter parameters for one topology level.

    Attributes
    ----------
    latency:
        Base one-way latency in seconds (half the zero-jitter ping-pong RTT).
    bandwidth:
        Bytes per second.
    jitter_scale:
        Mean of the exponential jitter term, in seconds.
    outlier_prob:
        Probability that a message additionally suffers an outlier delay.
    outlier_scale:
        Mean of the (exponential) outlier delay, in seconds.
    """

    latency: float
    bandwidth: float
    jitter_scale: float = 0.0
    outlier_prob: float = 0.0
    outlier_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if self.jitter_scale < 0 or self.outlier_scale < 0:
            raise ValueError("jitter scales must be >= 0")
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError("outlier_prob must be in [0, 1]")


@dataclass
class NetworkModel:
    """Per-level link parameters plus CPU send/recv overheads.

    ``levels`` maps each :class:`Level` to its :class:`LinkParams`; missing
    levels fall back to the next-coarser defined level (e.g. a model that
    only defines NODE and REMOTE treats SOCKET/SELF traffic as NODE).
    """

    levels: dict[Level, LinkParams]
    o_send: float = 0.2e-6
    o_recv: float = 0.2e-6
    #: Per-message serialization gap at a node's NIC (LogGP's g), applied
    #: to inter-node traffic on both the egress and the ingress side.  This
    #: is what makes "all ranks of a node communicate off-node at once"
    #: (dissemination/recursive-doubling barriers) slower and more skewed
    #: than leader-only patterns (binomial tree) — the Fig. 7/8 effect.
    nic_gap: float = 0.0
    #: Mean of an additional exponential delay applied per message already
    #: queued at the NIC when a message is injected.  Loaded links do not
    #: just serialize — their delay *variance* grows with backlog
    #: (queueing/congestion), which is what spreads barrier exits apart in
    #: all-ranks communication rounds.
    congestion_jitter: float = 0.0
    name: str = "generic"
    _resolved: dict[Level, LinkParams] = field(init=False, repr=False)
    #: Per-level hot-path parameters, indexed by ``int(level)``:
    #: ``(latency, 1/bandwidth, jitter_scale, outlier_prob, outlier_scale)``.
    _fast: list[tuple[float, float, float, float, float]] = field(
        init=False, repr=False
    )
    #: Bounded ``(level, size) -> latency + size/bandwidth`` cache.
    _base_cache: dict[tuple[int, int], float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("NetworkModel needs at least one level")
        if self.o_send < 0 or self.o_recv < 0:
            raise ValueError("overheads must be >= 0")
        resolved: dict[Level, LinkParams] = {}
        fallback: LinkParams | None = None
        # Walk from coarsest to finest so finer levels inherit coarser params.
        for level in sorted(Level, reverse=True):
            if level in self.levels:
                fallback = self.levels[level]
            if fallback is None:
                # No coarser level defined; use the finest defined one later.
                continue
            resolved[level] = fallback
        finest_defined = self.levels[min(self.levels)]
        for level in Level:
            resolved.setdefault(level, finest_defined)
        self._resolved = resolved
        self._fast = [
            (
                resolved[level].latency,
                1.0 / resolved[level].bandwidth,
                resolved[level].jitter_scale,
                resolved[level].outlier_prob,
                resolved[level].outlier_scale,
            )
            for level in sorted(Level)
        ]
        self._base_cache = {}

    def params_for(self, level: Level) -> LinkParams:
        """The effective link parameters for a topology level."""
        return self._resolved[level]

    def base_delay(self, level: Level, size: int) -> float:
        """Deterministic wire time ``latency + size/bandwidth``, cached.

        The cache is keyed by ``(level, size)`` and bounded (it resets
        after ``_BASE_CACHE_LIMIT`` distinct keys); sync workloads reuse a
        handful of sizes, so the division is paid once per size.
        """
        key = (level, size)
        cache = self._base_cache
        base = cache.get(key)
        if base is None:
            if len(cache) >= _BASE_CACHE_LIMIT:
                cache.clear()
            lat, inv_bw, _, _, _ = self._fast[level]
            base = lat + size * inv_bw
            cache[key] = base
        return base

    def delay(self, level: Level, size: int, rng: np.random.Generator) -> float:
        """Draw the wire time of one ``size``-byte message at ``level``.

        Scalar reference path: consumes one ``rng.random()`` per variate
        in the same order as :meth:`delay_from_pool`, so a pool wrapped
        around an identically seeded generator yields the same delays.
        ``size`` is validated at :class:`~repro.simmpi.engine.SendCmd`
        construction, not here.
        """
        _, _, jitter, outlier_prob, outlier_scale = self._fast[level]
        d = self.base_delay(level, size)
        if jitter > 0.0:
            d += jitter * -log1p(-rng.random())
        if outlier_prob > 0.0 and rng.random() < outlier_prob:
            d += outlier_scale * -log1p(-rng.random())
        return d

    def delay_from_pool(
        self, level: Level, size: int, pool: UniformPool
    ) -> float:
        """Pooled hot-path twin of :meth:`delay` (same variate order)."""
        _, _, jitter, outlier_prob, outlier_scale = self._fast[level]
        d = self.base_delay(level, size)
        if jitter > 0.0:
            d += jitter * -log1p(-pool.next())
        if outlier_prob > 0.0 and pool.next() < outlier_prob:
            d += outlier_scale * -log1p(-pool.next())
        return d

    def stochastic_burst(
        self, level: Level, n: int, pool: UniformPool
    ) -> list[float]:
        """``n`` stochastic delay addends for ``level``, vectorized.

        Returns the additive jitter+outlier terms (everything in
        :meth:`delay` beyond the deterministic base) as a list, computed
        in one numpy pass over ``3·n`` pooled uniforms — jitter, outlier
        trigger, outlier magnitude per addend.  The scalar path draws the
        magnitude only when the trigger fires, so burst draws consume the
        uniform stream in a *different order* than scalar draws: same
        distribution, deterministic per seed, but not bit-identical —
        which is why the engine gates burst mode behind an explicit
        option.  A level with no stochastic terms consumes no draws.
        """
        _, _, jitter, outlier_prob, outlier_scale = self._fast[level]
        if jitter == 0.0 and outlier_prob == 0.0:
            return [0.0] * n
        u = pool.take(3 * n)
        addend = np.zeros(n)
        if jitter > 0.0:
            addend += jitter * -np.log1p(-u[:n])
        if outlier_prob > 0.0:
            addend += np.where(
                u[n:2 * n] < outlier_prob,
                outlier_scale * -np.log1p(-u[2 * n:]),
                0.0,
            )
        return addend.tolist()

    def expected_delay(self, level: Level, size: int) -> float:
        """Mean wire time (used by latency estimators, not the engine)."""
        p = self._resolved[level]
        return (
            p.latency
            + size / p.bandwidth
            + p.jitter_scale
            + p.outlier_prob * p.outlier_scale
        )
