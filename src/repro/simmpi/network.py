"""LogGP-flavoured network model with per-level parameters.

Message transfer time between two processes is::

    delay = latency(level) + size / bandwidth(level) + jitter(level)

where ``level`` classifies the pair by topological distance (same core,
same socket, same node, different node).  Jitter is a shifted-exponential
draw — a light-tailed body with occasional large outliers (congestion/OS
noise), controlled by ``outlier_prob``/``outlier_scale``.  These outliers
are what invalidates window-based measurements in the paper's discussion
(Section II) and what the Round-Time scheme recovers from.

Sender- and receiver-side CPU overheads (``o_send``/``o_recv``) are charged
to the calling process's time line by the engine, matching the LogGP "o"
parameter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class Level(enum.IntEnum):
    """Topological distance between two communicating processes."""

    SELF = 0
    SOCKET = 1
    NODE = 2
    REMOTE = 3


@dataclass(frozen=True)
class LinkParams:
    """Latency/bandwidth/jitter parameters for one topology level.

    Attributes
    ----------
    latency:
        Base one-way latency in seconds (half the zero-jitter ping-pong RTT).
    bandwidth:
        Bytes per second.
    jitter_scale:
        Mean of the exponential jitter term, in seconds.
    outlier_prob:
        Probability that a message additionally suffers an outlier delay.
    outlier_scale:
        Mean of the (exponential) outlier delay, in seconds.
    """

    latency: float
    bandwidth: float
    jitter_scale: float = 0.0
    outlier_prob: float = 0.0
    outlier_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if self.jitter_scale < 0 or self.outlier_scale < 0:
            raise ValueError("jitter scales must be >= 0")
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError("outlier_prob must be in [0, 1]")


@dataclass
class NetworkModel:
    """Per-level link parameters plus CPU send/recv overheads.

    ``levels`` maps each :class:`Level` to its :class:`LinkParams`; missing
    levels fall back to the next-coarser defined level (e.g. a model that
    only defines NODE and REMOTE treats SOCKET/SELF traffic as NODE).
    """

    levels: dict[Level, LinkParams]
    o_send: float = 0.2e-6
    o_recv: float = 0.2e-6
    #: Per-message serialization gap at a node's NIC (LogGP's g), applied
    #: to inter-node traffic on both the egress and the ingress side.  This
    #: is what makes "all ranks of a node communicate off-node at once"
    #: (dissemination/recursive-doubling barriers) slower and more skewed
    #: than leader-only patterns (binomial tree) — the Fig. 7/8 effect.
    nic_gap: float = 0.0
    #: Mean of an additional exponential delay applied per message already
    #: queued at the NIC when a message is injected.  Loaded links do not
    #: just serialize — their delay *variance* grows with backlog
    #: (queueing/congestion), which is what spreads barrier exits apart in
    #: all-ranks communication rounds.
    congestion_jitter: float = 0.0
    name: str = "generic"
    _resolved: dict[Level, LinkParams] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("NetworkModel needs at least one level")
        if self.o_send < 0 or self.o_recv < 0:
            raise ValueError("overheads must be >= 0")
        resolved: dict[Level, LinkParams] = {}
        fallback: LinkParams | None = None
        # Walk from coarsest to finest so finer levels inherit coarser params.
        for level in sorted(Level, reverse=True):
            if level in self.levels:
                fallback = self.levels[level]
            if fallback is None:
                # No coarser level defined; use the finest defined one later.
                continue
            resolved[level] = fallback
        finest_defined = self.levels[min(self.levels)]
        for level in Level:
            resolved.setdefault(level, finest_defined)
        self._resolved = resolved

    def params_for(self, level: Level) -> LinkParams:
        """The effective link parameters for a topology level."""
        return self._resolved[level]

    def delay(self, level: Level, size: int, rng: np.random.Generator) -> float:
        """Draw the wire time of one ``size``-byte message at ``level``."""
        if size < 0:
            raise ValueError("message size must be >= 0")
        p = self._resolved[level]
        d = p.latency + size / p.bandwidth
        if p.jitter_scale > 0.0:
            d += rng.exponential(p.jitter_scale)
        if p.outlier_prob > 0.0 and rng.random() < p.outlier_prob:
            d += rng.exponential(p.outlier_scale)
        return d

    def expected_delay(self, level: Level, size: int) -> float:
        """Mean wire time (used by latency estimators, not the engine)."""
        p = self._resolved[level]
        return (
            p.latency
            + size / p.bandwidth
            + p.jitter_scale
            + p.outlier_prob * p.outlier_scale
        )
