"""Per-process context: the API a simulated MPI process programs against.

A process body is a generator function ``def main(ctx): ...`` that uses
``yield from`` on the helpers below.  The context exposes

* point-to-point primitives (:meth:`send`, :meth:`recv`, :meth:`ssend`,
  :meth:`sendrecv`),
* local-time control (:meth:`elapse`, :meth:`wait_until_clock`),
* clock reads (:meth:`read_clock`, :meth:`wtime`) which charge the timer's
  read overhead to the process's time line,
* placement metadata (rank, node, socket, core) used by the hierarchical
  synchronization schemes.

Clock reads do **not** yield: they advance the process's local true time
directly, which the engine honours when scheduling the next command.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.errors import ClockError
from repro.simmpi.engine import (
    ElapseCmd,
    Engine,
    RecvCmd,
    SendCmd,
    SendRecvCmd,
    WaitUntilCmd,
)
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simtime.base import Clock
from repro.simtime.hardware import HardwareClock


class ProcessContext:
    """Handle through which a process body interacts with the simulation."""

    def __init__(
        self,
        engine: Engine,
        rank: int,
        hardware_clock: HardwareClock,
        node: int = 0,
        socket: int = 0,
        core: int = 0,
        poll_interval: float = 0.1e-6,
    ) -> None:
        self.engine = engine
        self.rank = rank
        self.hardware_clock = hardware_clock
        self.node = node
        self.socket = socket
        self.core = core
        #: Busy-wait loop period: a deadline wait lands up to this much late.
        self.poll_interval = float(poll_interval)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current *true* simulation time (not observable by algorithms)."""
        return self.engine.proc_now(self.rank)

    @now.setter
    def now(self, value: float) -> None:
        self.engine.set_proc_now(self.rank, value)

    @property
    def rng(self) -> np.random.Generator:
        """This process's random stream (noise draws, poll slack)."""
        return self.engine.rng_of(self.rank)

    @property
    def nprocs(self) -> int:
        """World size of the simulated job."""
        return self.engine.num_ranks

    def read_clock(self, clock: Clock) -> float:
        """Read ``clock`` now; charges the clock's read overhead."""
        prof = self.engine.profiler
        if prof is None:
            overhead = clock.read_overhead
            if overhead:
                self.now = self.now + overhead
            return clock.read(self.now)
        # Profiled twin: attribute the hardware-clock/drift evaluation
        # (segment-table walks, quantization) to the "clock.read" zone.
        t0 = prof.clock()
        overhead = clock.read_overhead
        if overhead:
            self.now = self.now + overhead
        value = clock.read(self.now)
        prof.add("clock.read", prof.clock() - t0)
        return value

    def wtime(self) -> float:
        """``MPI_Wtime``: read this process's hardware clock."""
        return self.read_clock(self.hardware_clock)

    # ------------------------------------------------------------------
    # Yielding primitives
    # ------------------------------------------------------------------
    def send(
        self,
        dest: int,
        tag: int,
        payload: Any = None,
        size: int = 8,
    ) -> Generator:
        """Eager (buffered) send to global rank ``dest``."""
        yield SendCmd(dest=dest, tag=tag, payload=payload, size=size)

    def ssend(
        self,
        dest: int,
        tag: int,
        payload: Any = None,
        size: int = 8,
    ) -> Generator:
        """Synchronous (rendezvous) send: returns once the receiver matched."""
        yield SendCmd(
            dest=dest, tag=tag, payload=payload, size=size, synchronous=True
        )

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, Message]:
        """Blocking receive; returns the matched :class:`Message`."""
        msg = yield RecvCmd(source=source, tag=tag)
        return msg

    def sendrecv(
        self,
        dest: int,
        send_tag: int,
        payload: Any = None,
        size: int = 8,
        source: int = ANY_SOURCE,
        recv_tag: int = ANY_TAG,
    ) -> Generator[Any, Any, Message]:
        """Eager send followed by a blocking receive (exchange pattern).

        Yields one fused :class:`SendRecvCmd`: the engine executes the
        send half, re-checks the causality gate, then runs the receive —
        bit-identical to a SendCmd/RecvCmd pair but one generator resume
        cheaper per exchange.
        """
        msg = yield SendRecvCmd(
            dest=dest, tag=send_tag, payload=payload, size=size,
            source=source, recv_tag=recv_tag,
        )
        return msg

    def elapse(self, duration: float) -> Generator:
        """Consume local compute time."""
        yield ElapseCmd(duration)

    compute = elapse

    def wait_until_true(self, true_time: float) -> Generator:
        """Sleep until an absolute *true* time (engine-internal use)."""
        yield WaitUntilCmd(true_time)

    def wait_until_clock(self, clock: Clock, reading: float) -> Generator:
        """Busy-wait until ``clock`` shows at least ``reading``.

        The wait is resolved analytically by inverting the clock stack, then
        a uniform draw in ``[0, poll_interval)`` models the polling loop's
        discretization (a real busy-wait exits up to one loop period late).
        If the clock already shows a later value, returns immediately.
        """
        current = clock.read(self.now)
        if current < reading:
            try:
                deadline = clock.invert(reading)
            except ClockError:
                # Non-invertible model: fall back to stepped polling.
                deadline = self.now
                step = max(self.poll_interval, 1e-7)
                while clock.read(deadline) < reading:
                    deadline += step
            slack = float(self.rng.uniform(0.0, self.poll_interval))
            yield WaitUntilCmd(max(deadline + slack, self.now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessContext(rank={self.rank}, node={self.node}, "
            f"socket={self.socket}, core={self.core})"
        )
