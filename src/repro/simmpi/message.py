"""Messages and point-to-point matching rules.

Matching follows MPI semantics: a receive posted with ``(source, tag)``
matches the *earliest-sent* pending message whose source and tag are
compatible, where :data:`ANY_SOURCE` / :data:`ANY_TAG` act as wildcards.
Non-overtaking is guaranteed because pending messages are kept in send
order (monotonic sequence numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Wildcard source rank for receives (MPI_ANY_SOURCE).
ANY_SOURCE: int = -1
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG: int = -1


@dataclass(slots=True)
class Message:
    """A point-to-point message in flight or queued at the receiver.

    ``send_time``/``arrival`` are *true* simulation times; processes never
    see them directly — they observe only their own clocks.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    size: int
    send_time: float
    arrival: float
    seq: int
    #: Set for synchronous (rendezvous) sends: the sending process handle,
    #: resumed once the receiver matches this message.
    sync_sender: Any = field(default=None, repr=False)

    def matches(self, source: int, tag: int) -> bool:
        """Whether a recv posted with ``(source, tag)`` accepts this message."""
        if source != ANY_SOURCE and source != self.source:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass(slots=True)
class RecvDescriptor:
    """A blocked receive waiting for a matching message."""

    rank: int
    source: int
    tag: int
    post_time: float
