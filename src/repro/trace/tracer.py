"""Event recording with a pluggable time source.

:class:`Tracer` is the simulated equivalent of the paper's "tailor-made
MPI tracing library that first executes H2HCA to provide a global clock
while tracing": it wraps any generator-operation with clock reads and
records one :class:`TraceEvent` per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.simtime.base import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


@dataclass(frozen=True)
class TraceEvent:
    """One traced MPI call on one process (timestamps = clock readings)."""

    name: str
    rank: int
    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """end - start, in the recording clock's units (seconds)."""
        return self.end - self.start


class Tracer:
    """Per-process event recorder."""

    def __init__(self, clock: Clock, rank: int) -> None:
        self.clock = clock
        self.rank = rank
        self.events: list[TraceEvent] = []
        self._counters: dict[str, int] = {}

    def trace(
        self,
        comm: "Communicator",
        name: str,
        operation: Callable[["Communicator"], Generator],
    ) -> Generator:
        """Run ``operation(comm)`` with start/end timestamps recorded."""
        iteration = self._counters.get(name, 0)
        self._counters[name] = iteration + 1
        start = comm.ctx.read_clock(self.clock)
        result = yield from operation(comm)
        end = comm.ctx.read_clock(self.clock)
        self.events.append(
            TraceEvent(
                name=name,
                rank=self.rank,
                iteration=iteration,
                start=start,
                end=end,
            )
        )
        return result

    def gather_events(self, comm: "Communicator") -> Generator:
        """Collect all ranks' events at the root (post-mortem merge)."""
        gathered = yield from comm.gather(
            self.events, root=0, size=32 * max(1, len(self.events))
        )
        if comm.rank != 0:
            return None
        merged: list[TraceEvent] = []
        for events in gathered:
            merged.extend(events)
        return merged
