"""Event recording with a pluggable time source.

:class:`Tracer` is the simulated equivalent of the paper's "tailor-made
MPI tracing library that first executes H2HCA to provide a global clock
while tracing": it wraps any generator-operation with clock reads and
records one :class:`TraceEvent` per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.simtime.base import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


#: Wire bytes one serialized TraceEvent occupies in a post-mortem gather.
EVENT_WIRE_BYTES = 32
#: User tag of the post-mortem event-gather traffic.
GATHER_TAG = 11


@dataclass(frozen=True)
class TraceEvent:
    """One traced MPI call on one process (timestamps = clock readings).

    ``true_start``/``true_end`` additionally carry the ground-truth
    simulation times of the clock reads (never observable by a real
    tracer); :mod:`repro.obs.chrome_trace` uses them to re-read the same
    span through a *different* clock — the raw-vs-corrected trace diff of
    the paper's Fig. 10.
    """

    name: str
    rank: int
    iteration: int
    start: float
    end: float
    true_start: float | None = None
    true_end: float | None = None

    @property
    def duration(self) -> float:
        """end - start, in the recording clock's units (seconds)."""
        return self.end - self.start


class Tracer:
    """Per-process event recorder."""

    def __init__(self, clock: Clock, rank: int) -> None:
        self.clock = clock
        self.rank = rank
        self.events: list[TraceEvent] = []
        self._counters: dict[str, int] = {}

    def trace(
        self,
        comm: "Communicator",
        name: str,
        operation: Callable[["Communicator"], Generator],
    ) -> Generator:
        """Run ``operation(comm)`` with start/end timestamps recorded."""
        iteration = self._counters.get(name, 0)
        self._counters[name] = iteration + 1
        start = comm.ctx.read_clock(self.clock)
        true_start = comm.ctx.now
        result = yield from operation(comm)
        end = comm.ctx.read_clock(self.clock)
        self.events.append(
            TraceEvent(
                name=name,
                rank=self.rank,
                iteration=iteration,
                start=start,
                end=end,
                true_start=true_start,
                true_end=comm.ctx.now,
            )
        )
        return result

    def gather_events(self, comm: "Communicator") -> Generator:
        """Collect all ranks' events at the root (post-mortem merge).

        Gatherv-style: each rank's contribution is charged on the wire by
        *its own* event count (a uniform-size gather would let ranks with
        many events under-charge whenever counts are imbalanced — e.g.
        conditional instrumentation or mid-run rank joins).
        """
        if comm.rank != 0:
            yield from comm.send(
                0, GATHER_TAG, self.events,
                EVENT_WIRE_BYTES * max(1, len(self.events)),
            )
            return None
        merged: list[TraceEvent] = list(self.events)
        for peer in range(1, comm.size):
            msg = yield from comm.recv(peer, GATHER_TAG)
            merged.extend(msg.payload)
        return merged
