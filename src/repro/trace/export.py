"""Trace export: Chrome trace-event JSON and a plain-text Gantt view.

The paper's Fig. 10 is a Gantt chart; real tools (Vampir, Chrome's
``about:tracing``, Perfetto) consume standardized event formats.  This
module converts merged :class:`~repro.trace.tracer.TraceEvent` lists into

* the Chrome trace-event JSON array format (one complete "X" event per
  traced call, one row per rank), loadable in any Perfetto-style viewer;
* an ASCII Gantt rendering for terminals and docs.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.trace.tracer import TraceEvent


def to_chrome_trace(
    events: Sequence[TraceEvent],
    time_unit: float = 1e-6,
) -> str:
    """Serialize events as a Chrome trace-event JSON array.

    ``time_unit`` converts clock readings (seconds) into the format's
    microsecond timestamps; readings are shifted so the earliest event
    starts at 0 (Chrome renders absolute epoch offsets poorly).
    """
    if not events:
        return "[]"
    t0 = min(e.start for e in events)
    records = []
    for e in sorted(events, key=lambda e: (e.rank, e.start)):
        records.append(
            {
                "name": e.name,
                "cat": "mpi",
                "ph": "X",
                "ts": (e.start - t0) / time_unit,
                "dur": e.duration / time_unit,
                "pid": 0,
                "tid": e.rank,
                "args": {"iteration": e.iteration},
            }
        )
    return json.dumps(records, indent=1)


def to_ascii_gantt(
    events: Sequence[TraceEvent],
    name: str,
    iteration: int,
    width: int = 60,
) -> str:
    """Render one (name, iteration) event as an ASCII Gantt chart.

    Each row is a rank; ``#`` marks the event's extent on a common time
    axis from the earliest start to the latest end.  When the start spread
    dwarfs the durations (the paper's local-clock failure mode), the bars
    degenerate to single characters at wildly different columns — the
    textual equivalent of Fig. 10b.
    """
    selected = sorted(
        (e for e in events if e.name == name and e.iteration == iteration),
        key=lambda e: e.rank,
    )
    if not selected:
        raise ValueError(f"no events named {name!r} at iteration {iteration}")
    t0 = min(e.start for e in selected)
    t1 = max(e.end for e in selected)
    span = max(t1 - t0, 1e-12)
    lines = [f"{name} (iteration {iteration}), span {span * 1e6:.2f} us"]
    for e in selected:
        start_col = int((e.start - t0) / span * (width - 1))
        end_col = int((e.end - t0) / span * (width - 1))
        end_col = max(end_col, start_col)
        bar = (
            " " * start_col
            + "#" * (end_col - start_col + 1)
        ).ljust(width)
        lines.append(f"rank {e.rank:>4} |{bar}|")
    return "\n".join(lines)
