"""MPI tracing case study (paper Section V-C, Fig. 10).

A tailor-made tracing layer records per-process start/end timestamps of
MPI calls using an arbitrary clock — the paper's point is that with local
clocks (``clock_gettime`` especially) the cross-process timestamps are
incomparable, while a global clock (H2HCA) makes event structure visible.
"""

from repro.trace.tracer import TraceEvent, Tracer
from repro.trace.gantt import GanttBar, gantt_bars, visibility_ratio
from repro.trace.amg import amg_iteration_loop, AMG_DEFAULTS
from repro.trace.export import to_ascii_gantt, to_chrome_trace
from repro.trace.postmortem import PostMortemCorrector, record_sync_point

__all__ = [
    "TraceEvent",
    "Tracer",
    "GanttBar",
    "gantt_bars",
    "visibility_ratio",
    "amg_iteration_loop",
    "AMG_DEFAULTS",
    "to_ascii_gantt",
    "to_chrome_trace",
    "PostMortemCorrector",
    "record_sync_point",
]
