"""AMG2013-like mini-app workload (paper Section V-C).

The paper traces the DOE mini-app AMG2013 with inputs N=40, P=6, where the
application "spends about 80 % of the time in ``MPI_Allreduce`` with a
buffer size of 8 B".  The synthetic loop here reproduces that profile: per
iteration, a short imbalanced local compute phase (solver work) followed by
one 8-byte ``MPI_Allreduce`` (the CG inner-product reduction).  Compute
imbalance across ranks is drawn once per iteration, which is what makes
the per-process start times in the Gantt chart interesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.trace.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


@dataclass(frozen=True)
class AMGConfig:
    """Workload shape parameters."""

    niterations: int = 20
    #: Mean local compute per iteration (seconds).
    compute_mean: float = 8e-6
    #: Per-rank, per-iteration compute imbalance (std-dev, seconds).
    compute_jitter: float = 2e-6
    #: Allreduce payload (the paper's 8 B inner products).
    msize: int = 8
    allreduce_algorithm: str = "recursive_doubling"


AMG_DEFAULTS = AMGConfig()


def amg_iteration_loop(
    comm: "Communicator",
    tracer: Tracer,
    config: AMGConfig = AMG_DEFAULTS,
) -> Generator:
    """Run the solver loop, tracing each iteration's ``MPI_Allreduce``.

    Returns the number of completed iterations.
    """
    ctx = comm.ctx
    for _ in range(config.niterations):
        compute = max(
            0.0,
            float(
                ctx.rng.normal(config.compute_mean, config.compute_jitter)
            ),
        )
        yield from ctx.elapse(compute)

        def _allreduce(c):
            result = yield from c.allreduce(
                1.0, size=config.msize,
                algorithm=config.allreduce_algorithm,
            )
            return result

        yield from tracer.trace(comm, "MPI_Allreduce", _allreduce)
    return config.niterations
