"""Post-mortem timestamp correction, Scalasca-style.

Section II: "Trace analysis tools like Scalasca use linear interpolation
to adjust timestamps ... by considering the clock drift measured between
the initialization and the finalization phase of an MPI application.
Here, the assumption is made that the clock drift is linear over time,
which is not always true."

This module implements exactly that pipeline so the claim can be tested:

1. :func:`record_sync_point` — at init and at finalize, every client
   measures its offset to rank 0 (one SKaMPI-style measurement each).
2. :class:`PostMortemCorrector` — per rank, a linear model through the
   two anchors corrects recorded local timestamps after the run.

Under near-linear drift (short runs) this is as good as an online global
clock; under the non-constant drift of Fig. 2 the interpolated correction
leaves a residual that the online H2HCA clock does not (see
``tests/trace/test_postmortem.py`` and Becker et al., cited in the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from repro.errors import SyncError
from repro.simtime.base import Clock
from repro.sync.linear_model import LinearDriftModel
from repro.sync.offset import ClockOffset, OffsetAlgorithm
from repro.trace.tracer import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

SYNC_POINT_TAG = 13


def record_sync_point(
    comm: "Communicator",
    clock: Clock,
    offset_alg: OffsetAlgorithm,
) -> Generator:
    """One offset measurement per client against rank 0 (collective).

    Every rank returns its own :class:`ClockOffset` — rank 0's is the
    trivial (now, 0.0) anchor.  Rank 0 serializes the clients with
    go-signals, like the paper's accuracy-check procedure.
    """
    ctx = comm.ctx
    if comm.rank == 0:
        for client in range(1, comm.size):
            yield from comm.send(client, SYNC_POINT_TAG, None, 1)
            yield from offset_alg.measure_offset(comm, clock, 0, client)
        return ClockOffset(timestamp=ctx.read_clock(clock), offset=0.0)
    yield from comm.recv(0, SYNC_POINT_TAG)
    measurement = yield from offset_alg.measure_offset(
        comm, clock, 0, comm.rank
    )
    return measurement


@dataclass
class PostMortemCorrector:
    """Per-rank linear interpolation between two sync-point anchors."""

    init_anchor: ClockOffset
    final_anchor: ClockOffset

    def model(self) -> LinearDriftModel:
        """Line through (t_init, o_init) and (t_final, o_final)."""
        t1, o1 = self.init_anchor.timestamp, self.init_anchor.offset
        t2, o2 = self.final_anchor.timestamp, self.final_anchor.offset
        if t2 <= t1:
            raise SyncError(
                "final sync point must postdate the initial one"
            )
        slope = (o2 - o1) / (t2 - t1)
        intercept = o1 - slope * t1
        return LinearDriftModel(slope=slope, intercept=intercept)

    def correct_timestamp(self, local_time: float) -> float:
        """Adjusted (global) timestamp for a recorded local reading."""
        return self.model().apply(local_time)

    def correct_events(
        self, events: Sequence[TraceEvent]
    ) -> list[TraceEvent]:
        """Rewrite start/end of the events through the interpolation."""
        model = self.model()
        return [
            TraceEvent(
                name=e.name,
                rank=e.rank,
                iteration=e.iteration,
                start=model.apply(e.start),
                end=model.apply(e.end),
            )
            for e in events
        ]
