"""Gantt-chart extraction from merged traces (paper Fig. 10).

For a chosen event (e.g. the 10th ``MPI_Allreduce``), the chart shows one
bar per process: normalized start time and duration.  The paper's
qualitative finding is captured by :func:`visibility_ratio` — the ratio of
the typical event duration to the spread of start timestamps.  With local
``clock_gettime`` timestamps, the spread is ~10 orders of magnitude larger
than the durations (bars are invisible); with a global clock the spread is
comparable to the durations (~30 µs events become visible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace.tracer import TraceEvent


@dataclass(frozen=True)
class GanttBar:
    """One process's bar: start normalized to the earliest process."""

    rank: int
    start: float
    duration: float


def gantt_bars(
    events: Sequence[TraceEvent], name: str, iteration: int
) -> list[GanttBar]:
    """Extract the per-process bars of one (name, iteration) event."""
    selected = [
        e for e in events if e.name == name and e.iteration == iteration
    ]
    if not selected:
        raise ValueError(f"no events named {name!r} at iteration {iteration}")
    t0 = min(e.start for e in selected)
    return [
        GanttBar(rank=e.rank, start=e.start - t0, duration=e.duration)
        for e in sorted(selected, key=lambda e: e.rank)
    ]


def start_spread(bars: Sequence[GanttBar]) -> float:
    """Max - min of normalized start times."""
    starts = [b.start for b in bars]
    return max(starts) - min(starts)


def visibility_ratio(bars: Sequence[GanttBar]) -> float:
    """median(duration) / start spread — >~0.1 means bars are visible.

    Under ``clock_gettime`` local timestamps this is ~1e-9 (Fig. 10b: the
    y-axis spans 6e10 µs while events last 30 µs); under a global clock it
    is O(1) (Fig. 10a/10c).
    """
    spread = start_spread(bars)
    durations = float(np.median([b.duration for b in bars]))
    if spread <= 0.0:
        return float("inf")
    return durations / spread
