"""CHECK_CLOCK_ACCURACY (paper Algorithm 6) and a ground-truth oracle.

After a synchronization algorithm completes, the reference process measures
the clock offset between its global clock and every client's global clock —
immediately, and again after each configured waiting period.  The maximum
absolute offset across clients is the accuracy number plotted on the y-axes
of Figs. 3–6.

Fig. 6 (16k processes) samples 10 % of the clients to keep the check
affordable; ``sample_fraction`` reproduces that.

:func:`ground_truth_accuracy` is the simulation-level oracle: it evaluates
the returned clock objects at a common true time, with no measurement
noise.  Experiments report the *measured* value (faithful to the paper);
tests use the oracle to validate the measurement machinery itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Sequence

from repro.simtime.base import Clock
from repro.simtime.drift import DriftModel
from repro.sync.offset import OffsetAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: Go-signal tag for sequencing the per-client measurements.
CHECK_GO_TAG = 11


def _sample_clients(
    size: int, sample_fraction: float, seed: int
) -> list[int]:
    """Deterministic client sample (identical on every rank)."""
    clients = list(range(1, size))
    if sample_fraction >= 1.0:
        return clients
    import numpy as np

    rng = np.random.default_rng(seed)
    k = max(1, int(round(sample_fraction * len(clients))))
    picked = rng.choice(len(clients), size=k, replace=False)
    return sorted(clients[i] for i in picked)


def check_clock_accuracy(
    comm: "Communicator",
    global_clock: Clock,
    offset_alg: OffsetAlgorithm,
    wait_times: Sequence[float] = (0.0, 10.0),
    sample_fraction: float = 1.0,
    sample_seed: int = 0,
) -> Generator:
    """Measure each client's global-clock offset at several wait times.

    Collective.  Rank 0 returns ``{wait_time: {client: offset_seconds}}``;
    clients return ``None``.  Offsets are measured with ``offset_alg``
    between the *global* clocks, exactly as Algorithm 6 does, so the
    numbers include the same measurement noise the paper's do.
    """
    rank = comm.rank
    clients = _sample_clients(comm.size, sample_fraction, sample_seed)
    if rank == 0:
        results: dict[float, dict[int, float]] = {}
        anchor = comm.ctx.read_clock(global_clock)
        for wait in wait_times:
            yield from comm.ctx.wait_until_clock(global_clock, anchor + wait)
            per_client: dict[int, float] = {}
            for client in clients:
                yield from comm.send(client, CHECK_GO_TAG, None, 1)
                yield from offset_alg.measure_offset(
                    comm, global_clock, 0, client
                )
                # The client measured; it reports the value back.
                msg = yield from comm.recv(client, CHECK_GO_TAG)
                per_client[client] = msg.payload
            results[wait] = per_client
        return results
    if rank in clients:
        for _ in wait_times:
            yield from comm.recv(0, CHECK_GO_TAG)
            measurement = yield from offset_alg.measure_offset(
                comm, global_clock, 0, rank
            )
            yield from comm.send(
                0, CHECK_GO_TAG, measurement.offset, 8
            )
    return None


def max_abs_offset(per_client: dict[int, float]) -> float:
    """The paper's y-axis: max |offset| over the checked clients."""
    return max(abs(v) for v in per_client.values())


def ground_truth_accuracy(
    clocks: Sequence[Clock], true_time: float, ref_rank: int = 0
) -> float:
    """Oracle: max |clock_i(t) - clock_ref(t)| over all ranks at true ``t``."""
    ref = clocks[ref_rank].read(true_time)
    return max(
        abs(c.read(true_time) - ref)
        for i, c in enumerate(clocks)
        if i != ref_rank
    )


def error_bound(
    model,
    age: float,
    drift: DriftModel | float,
    base_error: float = 0.0,
) -> float:
    """Worst-case global-clock error ``age`` seconds after a sync.

    This is the paper's accuracy analysis turned into a contract: a
    linear model fitted at sync time starts with ``base_error`` (the
    fit's residual/measurement error) and degrades as the oscillator's
    skew wanders away from the fitted slope.  ``drift`` is either the
    client's :class:`~repro.simtime.drift.DriftModel` (its
    ``error_growth`` supplies a per-family bound on the integrated skew
    deviation) or a plain float rate in s/s (worst case
    ``|rate| * age``).  ``model`` is the fitted
    :class:`~repro.sync.linear_model.LinearDriftModel`; correcting local
    time by a slope rescales accumulated local error by at most
    ``1 + |slope|``.

    The bound is what the service layer reports as per-response
    staleness and what error-bound-driven resync policies compare
    against their SLO.  A negative ``age`` (clock not yet synced) is
    treated as unboundedly stale.
    """
    if age < 0.0:
        return float("inf")
    if isinstance(drift, DriftModel):
        growth = drift.error_growth(age)
    else:
        growth = abs(float(drift)) * age
    slope = getattr(model, "slope", 0.0) if model is not None else 0.0
    return base_error + (1.0 + abs(slope)) * growth
