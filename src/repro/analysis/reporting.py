"""Result containers and plain-text table/series formatting.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the format consistent across the
``benchmarks/`` targets and the ``examples/`` scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Series:
    """One named line of a figure: x values and y values with units."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def summary(self) -> str:
        ys = np.asarray(self.y, dtype=float)
        finite = ys[np.isfinite(ys)]
        if finite.size == 0:
            return f"{self.name}: (no data)"
        return (
            f"{self.name}: n={finite.size} mean={finite.mean():.4g} "
            f"min={finite.min():.4g} max={finite.max():.4g}"
        )


@dataclass
class Table:
    """A figure/table reproduction: header + rows of formatted cells."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append([str(c) for c in cells])


def format_table(table: Table) -> str:
    """Render a Table as aligned plain text."""
    widths = [len(c) for c in table.columns]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title]
    header = "  ".join(c.ljust(w) for c, w in zip(table.columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in table.rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def us(seconds: float) -> float:
    """Seconds → microseconds (the paper's unit for everything small)."""
    return seconds * 1e6


def fmt_us(seconds: float, digits: int = 2) -> str:
    """Format a duration in microseconds."""
    return f"{seconds * 1e6:.{digits}f}"
