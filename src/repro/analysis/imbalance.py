"""Barrier-exit imbalance measurement (paper Fig. 8).

With a precise global clock, the skew between the first and the last
process leaving an ``MPI_Barrier`` becomes observable: all processes line
up on a common global start time (Round-Time style), call the barrier, and
record their global-clock exit timestamps.  ``imbalance`` for one call is
``max(exit) − min(exit)``.

The paper's take-away — ``tree`` is by far the best, ``double_ring`` by far
the worst — follows from the algorithms' release structure and emerges
from the simulated message orderings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SyncError
from repro.simtime.base import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: Slack added to each round's start time, as a multiple of a rough
#: barrier-latency estimate, so every rank reaches the start line.
START_SLACK = 50e-6


def measure_barrier_imbalance(
    comm: "Communicator",
    global_clock: Clock,
    algorithm: str,
    nreps: int = 100,
    start_slack: float = START_SLACK,
) -> Generator:
    """Record ``nreps`` barrier-exit imbalances (seconds).

    Collective.  Rank 0 returns the list of imbalances; other ranks return
    ``None``.  Reps where some process misses the start line are recorded
    as NaN and skipped by the caller (same invalidation rule as the
    Round-Time scheme).
    """
    if nreps < 1:
        raise SyncError("nreps must be >= 1")
    ctx = comm.ctx
    rank = comm.rank
    imbalances: list[float] = []
    for _ in range(nreps):
        if rank == 0:
            start = ctx.read_clock(global_clock) + start_slack
            start = yield from comm.bcast(start, root=0, size=8)
        else:
            start = yield from comm.bcast(None, root=0, size=8)
        late = ctx.read_clock(global_clock) >= start
        yield from ctx.wait_until_clock(global_clock, start)
        yield from comm.barrier(algorithm=algorithm)
        t_exit = ctx.read_clock(global_clock)
        exits = yield from comm.gather((t_exit, late), root=0, size=16)
        if rank == 0:
            assert exits is not None
            if any(flag for _, flag in exits):
                imbalances.append(float("nan"))
            else:
                ts = [t for t, _ in exits]
                imbalances.append(max(ts) - min(ts))
    return imbalances if rank == 0 else None
