"""Evaluation machinery: accuracy checks, imbalance, drift statistics."""

from repro.analysis.accuracy import check_clock_accuracy, ground_truth_accuracy
from repro.analysis.imbalance import measure_barrier_imbalance
from repro.analysis.drift import record_drift, drift_linearity
from repro.analysis.reporting import Series, Table, format_table

__all__ = [
    "check_clock_accuracy",
    "ground_truth_accuracy",
    "measure_barrier_imbalance",
    "record_drift",
    "drift_linearity",
    "Series",
    "Table",
    "format_table",
]
