"""Clock-drift observation and linearity analysis (paper Fig. 2).

:func:`record_drift` replays the paper's Section III-C2 experiment: every
client repeatedly measures its offset to the reference process over a long
period (500 s in the paper), yielding one offset trace per rank.
:func:`drift_linearity` then fits linear models over sliding windows and
reports R² — the paper's criterion for "how long is drift linear?"
(R² > 0.9 holds over ~10 s windows; it degrades over minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

import numpy as np

from repro.errors import SyncError
from repro.simtime.base import Clock
from repro.sync.linear_model import LinearDriftModel
from repro.sync.offset import OffsetAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

DRIFT_GO_TAG = 12


@dataclass
class DriftTrace:
    """Offset observations of one client against the reference clock."""

    rank: int
    timestamps: np.ndarray  # client-local clock readings (s)
    offsets: np.ndarray  # client - ref offsets (s)


def record_drift(
    comm: "Communicator",
    clock: Clock,
    duration: float,
    interval: float,
    offset_alg: OffsetAlgorithm,
) -> Generator:
    """Sample every client's offset to rank 0 every ``interval`` seconds.

    Collective.  Rank 0 returns ``{client: DriftTrace}``; clients return
    ``None``.  Within one sampling round, rank 0 serves clients in rank
    order (go-signals keep each client's ping-pongs compact).
    """
    if duration <= 0 or interval <= 0:
        raise SyncError("duration and interval must be > 0")
    rank = comm.rank
    ctx = comm.ctx
    npoints = int(duration / interval)
    if rank == 0:
        traces: dict[int, list[tuple[float, float]]] = {
            c: [] for c in range(1, comm.size)
        }
        t_anchor = ctx.read_clock(clock)
        for point in range(npoints):
            yield from ctx.wait_until_clock(
                clock, t_anchor + point * interval
            )
            for client in range(1, comm.size):
                yield from comm.send(client, DRIFT_GO_TAG, None, 1)
                yield from offset_alg.measure_offset(comm, clock, 0, client)
                msg = yield from comm.recv(client, DRIFT_GO_TAG)
                traces[client].append(msg.payload)
        return {
            c: DriftTrace(
                rank=c,
                timestamps=np.array([t for t, _ in obs]),
                offsets=np.array([o for _, o in obs]),
            )
            for c, obs in traces.items()
        }
    for _ in range(npoints):
        yield from comm.recv(0, DRIFT_GO_TAG)
        measurement = yield from offset_alg.measure_offset(
            comm, clock, 0, rank
        )
        yield from comm.send(
            0,
            DRIFT_GO_TAG,
            (measurement.timestamp, measurement.offset),
            16,
        )
    return None


def drift_linearity(
    trace: DriftTrace, window: float
) -> list[tuple[float, float]]:
    """R² of a linear fit over consecutive windows of the trace.

    Returns ``[(window_start_timestamp, r_squared), ...]`` — the Fig. 2c
    analysis.  Windows with fewer than three points are skipped.
    """
    out: list[tuple[float, float]] = []
    t = trace.timestamps
    start = float(t[0])
    end = float(t[-1])
    while start < end:
        mask = (t >= start) & (t < start + window)
        if int(mask.sum()) >= 3:
            r2 = LinearDriftModel.r_squared(t[mask], trace.offsets[mask])
            out.append((start, r2))
        start += window
    return out


def detrended_range(trace: DriftTrace) -> float:
    """Residual range after removing the best global linear fit.

    A perfectly linear drift gives ~0; the paper's 500 s traces show tens
    of microseconds of curvature.
    """
    model = LinearDriftModel.fit(trace.timestamps, trace.offsets)
    resid = trace.offsets - (
        model.slope * trace.timestamps + model.intercept
    )
    return float(resid.max() - resid.min())


def extrapolation_error(trace: DriftTrace, fit_window: float) -> float:
    """|prediction error| at the end of the trace for an early-window fit.

    Fit a linear model over the first ``fit_window`` seconds (the paper's
    "drift is linear over 0–20 s" regime) and evaluate it at the last
    observation — the error a tracing tool makes when it interpolates
    timestamps assuming linear drift over the whole run (Fig. 2b: the
    fitted lines visibly leave the data over 500 s).
    """
    t = trace.timestamps
    mask = t <= t[0] + fit_window
    if int(mask.sum()) < 2:
        raise SyncError("fit_window selects fewer than two points")
    model = LinearDriftModel.fit(t[mask], trace.offsets[mask])
    predicted = model.slope * t[-1] + model.intercept
    return float(abs(trace.offsets[-1] - predicted))


def mean_r_squared(
    traces: Sequence[DriftTrace], window: float
) -> float:
    """Average windowed R² over a set of traces."""
    values = []
    for tr in traces:
        values.extend(r2 for _, r2 in drift_linearity(tr, window))
    return float(np.mean(values)) if values else float("nan")
