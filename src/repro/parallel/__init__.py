"""Parallel execution of independent simulated jobs.

The campaigns behind Figs. 3–9 are embarrassingly parallel: each point is
an independent simulated mpirun.  This package fans them out across
worker processes without giving up bit-for-bit determinism:

* :func:`~repro.parallel.seeds.job_seeds` — collision-free per-job
  ``SeedSequence`` derivation (replaces ad-hoc integer seed math),
* :class:`~repro.parallel.executor.JobSpec` /
  :func:`~repro.parallel.executor.run_jobs` — submission-ordered
  process-pool execution with per-worker observability capture,
* ``jobs=1`` — the in-process serial reference path.

See DESIGN.md ("Performance & parallel execution") for the determinism
contract.
"""

from repro.parallel.executor import JobSpec, resolve_jobs, run_jobs
from repro.parallel.seeds import job_seeds, seed_int

__all__ = [
    "JobSpec",
    "job_seeds",
    "resolve_jobs",
    "run_jobs",
    "seed_int",
]
