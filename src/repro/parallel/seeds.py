"""Deterministic per-job seed derivation for campaign executors.

One campaign = one root ``numpy.random.SeedSequence``; every independent
simulated mpirun gets one *spawned child* of that root.  Children are
derived from the root entropy plus their spawn index, so:

* two jobs can never collide (unlike the previous ``crc32(label) % 997``
  folding, where distinct ``(label, run_idx, seed)`` triples could map to
  the same integer seed),
* the derivation depends only on the job's *position* in the submission
  order, never on which process executes it — which is what makes the
  serial and parallel execution paths bit-identical,
* each child can be spawned further inside the job (engine stream, clock
  stream, delay pools) without ever touching its siblings.

The scheme: ``job_seeds(root_seed, n)[i] == SeedSequence(root_seed).spawn(n)[i]``
with spawn key ``(i,)``.  Anything needing a plain integer (e.g. sampling
helpers built on ``default_rng(int)``) uses :func:`seed_int`, a pure
function of the child (it does not advance spawn state).
"""

from __future__ import annotations

import numpy as np


def job_seeds(root_seed: int, njobs: int) -> list[np.random.SeedSequence]:
    """Spawn one independent child seed per job, in submission order."""
    return np.random.SeedSequence(root_seed).spawn(njobs)


def seed_int(seedseq: np.random.SeedSequence) -> int:
    """A stable 32-bit integer derived from a seed sequence.

    ``generate_state`` is a pure function of the sequence: calling it does
    not advance the spawn counter, so engine/clock streams spawned from
    the same child are unaffected.
    """
    return int(seedseq.generate_state(1, np.uint32)[0])
