"""Process-pool execution of independent simulated jobs.

Every figure campaign is ``nmpiruns × labels`` *independent* simulated
mpiruns; this module fans them out over worker processes while keeping
the results bit-identical to serial execution:

* **Seeding** — callers derive one ``SeedSequence`` child per job from a
  single root (:mod:`repro.parallel.seeds`) *before* submission, so a
  job's randomness depends only on its submission index, never on the
  executing worker or completion order.
* **Ordering** — results are collected in submission order
  (``ProcessPoolExecutor.map``), so downstream aggregation sees the same
  sequence the serial loop would have produced.
* **Observability** — worker processes cannot emit into the parent's
  process-wide sink/metrics/timeseries defaults, so each worker runs its
  job under fresh obs objects, ships them back with the result, and the
  parent merges them in submission order (counts into counting sinks,
  replayed events otherwise, ``merge_from`` for metrics registries and
  time-series banks).  When any obs target is installed, the **serial
  path routes through the same per-job-isolate + merge sequence**: some
  aggregates (reservoir histograms, decimating time-series) are not
  invariant under re-batching, so running both paths through identical
  merge sequences is what makes ``--jobs 1`` and ``--jobs N`` outputs
  byte-identical — the contract ``tests/obs/test_report.py`` pins.

With no obs installed, ``jobs=1`` runs everything in-process with no
isolation, no pickling and no sink indirection — the exact serial code
path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.events import (
    CountingSink,
    EventSink,
    RecordingSink,
    default_sink,
    get_default_sink,
)
from repro.obs.metrics import (
    MetricsRegistry,
    default_metrics,
    get_default_metrics,
)
from repro.obs.timeseries import (
    TimeSeriesBank,
    default_timeseries,
    get_default_timeseries,
)
from repro.prof.core import (
    Profiler,
    default_profiler,
    get_default_profiler,
)


@dataclass(frozen=True)
class JobSpec:
    """One independent unit of work: a picklable callable plus arguments.

    ``fn`` must be addressable by module path (a module-level function),
    and every argument picklable — job specs cross a process boundary
    when ``jobs > 1``.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: Free-form tag for diagnostics (not used by the executor itself).
    label: str = ""


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores.

    "All cores" respects the scheduler affinity mask when the platform
    exposes one (containers often restrict it below ``os.cpu_count()``).
    """
    if jobs is None or jobs <= 0:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # non-Linux
            return os.cpu_count() or 1
    return jobs


def _execute_job(
    spec: JobSpec,
    sink_mode: str | None,
    want_metrics: bool,
    want_bank: bool,
    want_profiler: bool = False,
):
    """Run one job under fresh obs defaults (both worker- and serial-side).

    Returns ``(result, payload, registry, bank, profiler)``; ``payload``
    depends on ``sink_mode``: ``None`` (no sink), ``"count"`` (dict of
    event counts) or ``"record"`` (event list, for recording sinks).
    """
    sink: EventSink | None = None
    registry = MetricsRegistry() if want_metrics else None
    bank = TimeSeriesBank() if want_bank else None
    profiler = Profiler() if want_profiler else None
    with ExitStack() as stack:
        if sink_mode is not None:
            sink = (
                CountingSink() if sink_mode == "count" else RecordingSink()
            )
            stack.enter_context(default_sink(sink))
        if registry is not None:
            stack.enter_context(default_metrics(registry))
        if bank is not None:
            stack.enter_context(default_timeseries(bank))
        if profiler is not None:
            stack.enter_context(default_profiler(profiler))
        result = spec.fn(*spec.args, **spec.kwargs)
    payload = None
    if sink_mode is not None:
        payload = sink.counts if sink_mode == "count" else sink.events
    return result, payload, registry, bank, profiler


def _merge_obs(
    parent_sink: EventSink | None,
    parent_metrics: MetricsRegistry | None,
    parent_bank: TimeSeriesBank | None,
    sink_mode: str | None,
    payload,
    registry: MetricsRegistry | None,
    bank: TimeSeriesBank | None,
    parent_profiler: Profiler | None = None,
    profiler: Profiler | None = None,
) -> None:
    if parent_sink is not None and payload:
        if sink_mode == "count":
            # CountingSink: fold the per-job counts directly.
            counts = parent_sink.counts
            for name, n in payload.items():
                counts[name] = counts.get(name, 0) + n
        elif sink_mode == "record":
            # Span recorders segment their history per engine run; a
            # replayed job is a fresh seq namespace, so break first.
            brk = getattr(parent_sink, "run_break", None)
            if brk is not None:
                brk()
            for event in payload:
                parent_sink.emit(event)
    if parent_metrics is not None and registry is not None:
        parent_metrics.merge_from(registry)
    if parent_bank is not None and bank is not None:
        parent_bank.merge_from(bank)
    if parent_profiler is not None and profiler is not None:
        parent_profiler.merge_from(profiler)


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int | None = 1,
    sink: EventSink | None = None,
    metrics: MetricsRegistry | None = None,
    timeseries: TimeSeriesBank | None = None,
) -> list[Any]:
    """Run every job; returns their results in submission order.

    ``jobs=1`` executes in-process (the serial reference path);
    ``jobs>1`` fans out over a :class:`ProcessPoolExecutor`.  Both paths
    return bit-identical results for deterministic job functions because
    all randomness is fixed by the job specs themselves — and identical
    merged observability, because both paths run each job under fresh
    obs objects and fold them in submission order.

    ``sink``/``metrics``/``timeseries`` default to the process-wide
    observability defaults; the process-wide default profiler (when one
    is installed) is likewise isolated per job and merged back in
    submission order.  The executor publishes
    ``parallel.jobs.completed`` and ``parallel.workers`` through the
    registry either way.
    """
    specs = list(specs)
    sink = sink if sink is not None else get_default_sink()
    metrics = metrics if metrics is not None else get_default_metrics()
    timeseries = (
        timeseries if timeseries is not None else get_default_timeseries()
    )
    njobs = min(resolve_jobs(jobs), len(specs)) if specs else 1

    profiler = get_default_profiler()

    sink_mode = None
    if sink is not None:
        sink_mode = "count" if isinstance(sink, CountingSink) else "record"
    want_metrics = metrics is not None
    want_bank = timeseries is not None
    want_prof = profiler is not None
    observed = (
        sink_mode is not None or want_metrics or want_bank or want_prof
    )

    results = []
    if njobs <= 1:
        for spec in specs:
            if observed:
                result, payload, registry, bank, job_prof = _execute_job(
                    spec, sink_mode, want_metrics, want_bank, want_prof
                )
                _merge_obs(
                    sink, metrics, timeseries,
                    sink_mode, payload, registry, bank,
                    profiler, job_prof,
                )
                results.append(result)
            else:
                results.append(spec.fn(*spec.args, **spec.kwargs))
            if metrics is not None:
                metrics.counter("parallel.jobs.completed").inc()
        if metrics is not None:
            metrics.gauge("parallel.workers").set(1)
        return results

    n = len(specs)
    with ProcessPoolExecutor(max_workers=njobs) as pool:
        outcomes = list(pool.map(
            _execute_job, specs,
            [sink_mode] * n, [want_metrics] * n, [want_bank] * n,
            [want_prof] * n,
        ))
    for result, payload, registry, bank, job_prof in outcomes:
        results.append(result)
        _merge_obs(
            sink, metrics, timeseries, sink_mode, payload, registry, bank,
            profiler, job_prof,
        )
        if metrics is not None:
            metrics.counter("parallel.jobs.completed").inc()
    if metrics is not None:
        metrics.gauge("parallel.workers").set(njobs)
    return results
