"""Process-pool execution of independent simulated jobs.

Every figure campaign is ``nmpiruns × labels`` *independent* simulated
mpiruns; this module fans them out over worker processes while keeping
the results bit-identical to serial execution:

* **Seeding** — callers derive one ``SeedSequence`` child per job from a
  single root (:mod:`repro.parallel.seeds`) *before* submission, so a
  job's randomness depends only on its submission index, never on the
  executing worker or completion order.
* **Ordering** — results are collected in submission order
  (``ProcessPoolExecutor.map``), so downstream aggregation sees the same
  sequence the serial loop would have produced.
* **Observability** — worker processes cannot emit into the parent's
  process-wide sink/metrics defaults, so each worker runs its job under a
  fresh sink + registry, ships them back with the result, and the parent
  merges them in submission order (counts into counting sinks, replayed
  events otherwise, ``MetricsRegistry.merge_from`` for metrics).

``jobs=1`` (the default) runs everything in-process with no pool, no
pickling and no sink indirection — the exact serial code path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.events import (
    CountingSink,
    EventSink,
    RecordingSink,
    default_sink,
    get_default_sink,
)
from repro.obs.metrics import (
    MetricsRegistry,
    default_metrics,
    get_default_metrics,
)


@dataclass(frozen=True)
class JobSpec:
    """One independent unit of work: a picklable callable plus arguments.

    ``fn`` must be addressable by module path (a module-level function),
    and every argument picklable — job specs cross a process boundary
    when ``jobs > 1``.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: Free-form tag for diagnostics (not used by the executor itself).
    label: str = ""


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores.

    "All cores" respects the scheduler affinity mask when the platform
    exposes one (containers often restrict it below ``os.cpu_count()``).
    """
    if jobs is None or jobs <= 0:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # non-Linux
            return os.cpu_count() or 1
    return jobs


def _execute_job(spec: JobSpec, obs_mode: str | None):
    """Worker-side wrapper: run one job under fresh obs defaults.

    Returns ``(result, events_or_counts, registry)`` where the middle
    element depends on ``obs_mode``: ``None`` (parent had no sink),
    ``"count"`` (dict of event counts) or ``"record"`` (event list, for
    parents with recording-style sinks).
    """
    if obs_mode is None:
        return spec.fn(*spec.args, **spec.kwargs), None, None
    sink: EventSink = CountingSink() if obs_mode == "count" else RecordingSink()
    registry = MetricsRegistry()
    with default_sink(sink), default_metrics(registry):
        result = spec.fn(*spec.args, **spec.kwargs)
    payload = sink.counts if obs_mode == "count" else sink.events
    return result, payload, registry


def _merge_obs(
    parent_sink: EventSink | None,
    parent_metrics: MetricsRegistry | None,
    obs_mode: str | None,
    payload,
    registry: MetricsRegistry | None,
) -> None:
    if parent_sink is not None and payload:
        if obs_mode == "count":
            # CountingSink: fold the per-worker counts directly.
            counts = parent_sink.counts
            for name, n in payload.items():
                counts[name] = counts.get(name, 0) + n
        elif obs_mode == "record":
            for event in payload:
                parent_sink.emit(event)
    if parent_metrics is not None and registry is not None:
        parent_metrics.merge_from(registry)


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int | None = 1,
    sink: EventSink | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[Any]:
    """Run every job; returns their results in submission order.

    ``jobs=1`` executes in-process (the serial reference path);
    ``jobs>1`` fans out over a :class:`ProcessPoolExecutor`.  Both paths
    return bit-identical results for deterministic job functions because
    all randomness is fixed by the job specs themselves.

    ``sink``/``metrics`` default to the process-wide observability
    defaults; the executor publishes ``parallel.jobs.completed`` and
    ``parallel.workers`` through the registry either way.
    """
    specs = list(specs)
    sink = sink if sink is not None else get_default_sink()
    metrics = metrics if metrics is not None else get_default_metrics()
    njobs = min(resolve_jobs(jobs), len(specs)) if specs else 1

    if njobs <= 1:
        results = []
        for spec in specs:
            results.append(spec.fn(*spec.args, **spec.kwargs))
            if metrics is not None:
                metrics.counter("parallel.jobs.completed").inc()
        if metrics is not None:
            metrics.gauge("parallel.workers").set(1)
        return results

    obs_mode = None
    if sink is not None:
        obs_mode = "count" if isinstance(sink, CountingSink) else "record"
    elif metrics is not None:
        # No sink, but metrics wanted: workers still need a registry.
        obs_mode = "count"

    with ProcessPoolExecutor(max_workers=njobs) as pool:
        outcomes = list(
            pool.map(_execute_job, specs, [obs_mode] * len(specs))
        )
    results = []
    for result, payload, registry in outcomes:
        results.append(result)
        _merge_obs(sink, metrics, obs_mode, payload, registry)
        if metrics is not None:
            metrics.counter("parallel.jobs.completed").inc()
    if metrics is not None:
        metrics.gauge("parallel.workers").set(njobs)
    return results
