"""Rough latency pre-estimation (ESTIMATE_LATENCY in Algorithm 5).

The Round-Time scheme needs a ballpark figure for ``MPI_Bcast`` (to pick
the slack between announcing a start time and the start itself) and the
window scheme needs an estimate of the measured operation (to pick the
window size).  This estimator runs a few barrier-synchronized repetitions
and returns the maximum mean across ranks — deliberately the crude approach
real benchmark suites use, since its bias is part of what the paper's
Round-Time scheme is designed to tolerate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: An operation to measure: generator function taking the communicator.
Operation = Callable[["Communicator"], Generator]


def estimate_latency(
    comm: "Communicator",
    operation: Operation,
    nreps: int = 10,
    barrier_algorithm: str = "tree",
) -> Generator:
    """Estimate the operation's latency; every rank returns the estimate.

    Uses local (hardware) clocks: runs ``nreps`` barrier-synchronized
    repetitions, averages the per-rank durations, and allreduces the max.
    """
    ctx = comm.ctx
    samples = np.empty(nreps)
    for i in range(nreps):
        yield from comm.barrier(algorithm=barrier_algorithm)
        t0 = ctx.wtime()
        yield from operation(comm)
        samples[i] = ctx.wtime() - t0
    local_mean = float(samples.mean())
    estimate = yield from comm.allreduce(local_mean, op=max, size=8)
    return estimate
