"""Benchmark-suite emulations: how suites turn samples into one number.

The paper's Fig. 7 caption spells out the data-processing difference:
"the mean with Intel MPI Benchmarks and OSU Micro-Benchmarks and the
median with ReproMPI".  The suites also differ in the synchronization
scheme (barrier for OSU/IMB; window or Round-Time for ReproMPI) and in the
cross-rank aggregation:

* OSU reports the average across ranks of each rank's mean latency.
* IMB reports t_min / t_avg / t_max across ranks of per-rank means.
* ReproMPI, with a global clock, reconstructs per-repetition *collective*
  durations (max across ranks of the common-start-to-exit time) and
  reports their median.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.bench.estimate import Operation
from repro.bench.schemes import (
    BarrierScheme,
    RoundTimeScheme,
    SchemeResult,
    WindowScheme,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


@dataclass
class SuiteReport:
    """What a benchmark suite prints for one (operation, msize) cell."""

    suite: str
    latency: float  # the headline number, seconds
    t_min: float
    t_max: float
    nvalid: int
    invalid: int


def _gather_summary(
    comm: "Communicator", local: SchemeResult
) -> Generator:
    """Collect per-rank means at the root (what OSU/IMB's reduction does)."""
    packed = (local.mean(), local.nvalid, local.invalid)
    gathered = yield from comm.gather(packed, root=0, size=24)
    return gathered


def osu_report(
    comm: "Communicator",
    operation: Operation,
    nreps: int = 100,
    barrier_algorithm: str = "tree",
) -> Generator:
    """OSU Micro-Benchmarks: barrier scheme, avg-across-ranks of means."""
    scheme = BarrierScheme(barrier_algorithm=barrier_algorithm, nreps=nreps)
    local = yield from scheme.run(comm, operation)
    gathered = yield from _gather_summary(comm, local)
    if comm.rank != 0:
        return None
    means = np.array([g[0] for g in gathered])
    return SuiteReport(
        suite="OSU",
        latency=float(means.mean()),
        t_min=float(means.min()),
        t_max=float(means.max()),
        nvalid=int(min(g[1] for g in gathered)),
        invalid=int(sum(g[2] for g in gathered)),
    )


def imb_report(
    comm: "Communicator",
    operation: Operation,
    nreps: int = 100,
    barrier_algorithm: str = "tree",
) -> Generator:
    """Intel MPI Benchmarks: barrier scheme, reports t_avg (and min/max)."""
    scheme = BarrierScheme(barrier_algorithm=barrier_algorithm, nreps=nreps)
    local = yield from scheme.run(comm, operation)
    gathered = yield from _gather_summary(comm, local)
    if comm.rank != 0:
        return None
    means = np.array([g[0] for g in gathered])
    return SuiteReport(
        suite="IMB",
        latency=float(means.mean()),
        t_min=float(means.min()),
        t_max=float(means.max()),
        nvalid=int(min(g[1] for g in gathered)),
        invalid=int(sum(g[2] for g in gathered)),
    )


def skampi_report(
    comm: "Communicator",
    operation: Operation,
    global_clock_provider,
    window: float | None = None,
    nreps: int = 100,
    window_factor: float = 4.0,
) -> Generator:
    """SKaMPI/NBCBench-style window scheme: fixed windows, min latency.

    SKaMPI reports the *minimum* observed time across repetitions (its
    documentation argues the minimum is the reproducible statistic).
    Repetitions whose window was missed are invalid on the rank that
    missed it; the root intersects validity across ranks before reducing,
    which is why one outlier costs several windows (Section II).
    """
    scheme = WindowScheme(
        global_clock_provider,
        window=window,
        nreps=nreps,
        window_factor=window_factor,
    )
    local = yield from scheme.run(comm, operation)
    packed = (local.durations, local.nvalid, local.invalid)
    gathered = yield from comm.gather(
        packed, root=0, size=8 * max(1, local.nvalid)
    )
    if comm.rank != 0:
        return None
    nvalid = min(g[1] for g in gathered)
    if nvalid == 0:
        return SuiteReport(
            suite="SKaMPI",
            latency=float("nan"),
            t_min=float("nan"),
            t_max=float("nan"),
            nvalid=0,
            invalid=sum(g[2] for g in gathered),
        )
    per_rep = np.array([g[0][:nvalid] for g in gathered]).max(axis=0)
    return SuiteReport(
        suite="SKaMPI",
        latency=float(per_rep.min()),
        t_min=float(per_rep.min()),
        t_max=float(per_rep.max()),
        nvalid=nvalid,
        invalid=sum(g[2] for g in gathered),
    )


def reprompi_report(
    comm: "Communicator",
    operation: Operation,
    global_clock_provider,
    max_time_slice: float = 1.0,
    max_nrep: int = 200,
    scheme: str = "round_time",
    barrier_algorithm: str = "tree",
    nreps: int = 100,
) -> Generator:
    """ReproMPI: Round-Time (default) or barrier scheme, median latency.

    With the Round-Time scheme the per-repetition duration is measured
    from the *common* global start time, so the collective latency per
    repetition is the max across ranks; the root gathers per-rank
    durations and reduces them rep-wise before taking the median.
    """
    if scheme == "round_time":
        rt = RoundTimeScheme(
            global_clock_provider,
            max_time_slice=max_time_slice,
            max_nrep=max_nrep,
        )
        local = yield from rt.run(comm, operation)
        gathered = yield from comm.gather(
            local.durations, root=0, size=8 * max(1, local.nvalid)
        )
        if comm.rank != 0:
            return None
        nvalid = min(len(g) for g in gathered)
        per_rep = np.array([g[:nvalid] for g in gathered]).max(axis=0)
        return SuiteReport(
            suite="ReproMPI",
            latency=float(np.median(per_rep)) if nvalid else float("nan"),
            t_min=float(per_rep.min()) if nvalid else float("nan"),
            t_max=float(per_rep.max()) if nvalid else float("nan"),
            nvalid=nvalid,
            invalid=local.invalid,
        )
    if scheme == "barrier":
        b = BarrierScheme(barrier_algorithm=barrier_algorithm, nreps=nreps)
        local = yield from b.run(comm, operation)
        gathered = yield from comm.gather(
            local.durations, root=0, size=8 * max(1, local.nvalid)
        )
        if comm.rank != 0:
            return None
        per_rep = np.array(gathered).max(axis=0)
        return SuiteReport(
            suite="ReproMPI",
            latency=float(np.median(per_rep)),
            t_min=float(per_rep.min()),
            t_max=float(per_rep.max()),
            nvalid=len(per_rep),
            invalid=0,
        )
    raise ValueError(f"unknown ReproMPI scheme {scheme!r}")
