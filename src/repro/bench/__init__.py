"""Benchmarking layer: measurement schemes and suite emulations.

* :mod:`repro.bench.estimate` — latency pre-estimation (the
  ``ESTIMATE_LATENCY`` step of Algorithm 5).
* :mod:`repro.bench.schemes` — the three process-synchronization schemes
  the paper compares: barrier-based, window-based, and Round-Time (Alg. 5).
* :mod:`repro.bench.suites` — how OSU Micro-Benchmarks, Intel MPI
  Benchmarks, and ReproMPI aggregate raw samples into a reported latency.
* :mod:`repro.bench.runner` — end-to-end orchestration (sync clocks, run
  scheme, aggregate), used by the experiment modules.
"""

from repro.bench.estimate import estimate_latency
from repro.bench.schemes import (
    BarrierScheme,
    WindowScheme,
    RoundTimeScheme,
    SchemeResult,
)
from repro.bench.suites import (
    SuiteReport,
    osu_report,
    imb_report,
    skampi_report,
    reprompi_report,
)
from repro.bench.runner import LatencyMeasurement, run_latency_benchmark
from repro.bench.stopping import AdaptiveBarrierScheme

__all__ = [
    "estimate_latency",
    "BarrierScheme",
    "WindowScheme",
    "RoundTimeScheme",
    "SchemeResult",
    "SuiteReport",
    "osu_report",
    "imb_report",
    "skampi_report",
    "reprompi_report",
    "LatencyMeasurement",
    "run_latency_benchmark",
    "AdaptiveBarrierScheme",
]
