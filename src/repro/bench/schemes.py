"""Process-synchronization schemes for latency measurement.

The paper compares three ways of lining processes up before each timed
repetition of a collective:

* :class:`BarrierScheme` — what OSU Micro-Benchmarks and Intel MPI
  Benchmarks do: an ``MPI_Barrier`` before each repetition, durations
  taken on local clocks.  Barrier-exit imbalance leaks into the measured
  latency (Figs. 7–8).
* :class:`WindowScheme` — SKaMPI/NBCBench style: a global clock plus a
  pre-agreed window size; every repetition starts at the next window
  boundary.  One slow repetition ("outlier") makes processes miss the
  start of several subsequent windows, invalidating them — the cascade
  failure the paper describes in Section II.
* :class:`RoundTimeScheme` — the paper's contribution (Algorithm 5): the
  root announces each start time dynamically (current global time plus a
  slack of ``B ×`` the estimated ``MPI_Bcast`` latency), so one outlier
  invalidates at most one measurement, and a fixed time slice bounds the
  total experiment duration regardless of the operation's speed.

Every scheme returns a :class:`SchemeResult` holding, per valid
repetition, the *collective duration* as seen by that scheme: per-rank
local durations for the barrier scheme, global-clock durations (common
start to last exit known per rank) for window/Round-Time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.estimate import Operation, estimate_latency
from repro.simtime.base import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


@dataclass
class SchemeResult:
    """Per-rank outcome of one measurement run.

    ``durations`` holds one duration per *valid* repetition (seconds).
    ``invalid`` counts repetitions this scheme had to discard.
    """

    scheme: str
    durations: list[float] = field(default_factory=list)
    invalid: int = 0

    @property
    def nvalid(self) -> int:
        return len(self.durations)

    def mean(self) -> float:
        return float(np.mean(self.durations)) if self.durations else float("nan")

    def median(self) -> float:
        return (
            float(np.median(self.durations)) if self.durations else float("nan")
        )


class BarrierScheme:
    """Barrier before every repetition; local-clock durations."""

    name = "barrier"

    def __init__(self, barrier_algorithm: str = "tree", nreps: int = 100):
        if nreps < 1:
            raise ConfigurationError("nreps must be >= 1")
        self.barrier_algorithm = barrier_algorithm
        self.nreps = nreps

    def run(
        self, comm: "Communicator", operation: Operation
    ) -> Generator:
        ctx = comm.ctx
        result = SchemeResult(scheme=self.name)
        for _ in range(self.nreps):
            yield from comm.barrier(algorithm=self.barrier_algorithm)
            t0 = ctx.wtime()
            yield from operation(comm)
            result.durations.append(ctx.wtime() - t0)
        return result


class WindowScheme:
    """Fixed windows on a global clock; missed windows are invalid."""

    name = "window"

    def __init__(
        self,
        global_clock_provider,
        window: float | None = None,
        nreps: int = 100,
        window_factor: float = 4.0,
    ):
        """``global_clock_provider``: rank → Clock (set up by the runner).

        ``window=None`` derives the window as ``window_factor ×`` an
        initial latency estimate — the guess real suites make, and exactly
        the under/over-estimation problem Round-Time removes.
        """
        if nreps < 1:
            raise ConfigurationError("nreps must be >= 1")
        self.global_clock_provider = global_clock_provider
        self.window = window
        self.nreps = nreps
        self.window_factor = window_factor

    def run(
        self, comm: "Communicator", operation: Operation
    ) -> Generator:
        ctx = comm.ctx
        g_clk: Clock = self.global_clock_provider(comm)
        window = self.window
        if window is None:
            estimate = yield from estimate_latency(comm, operation)
            window = self.window_factor * estimate
        # Root announces the start of window 0; all else is implicit.
        if comm.rank == 0:
            start0 = ctx.read_clock(g_clk) + 10 * window
            start0 = yield from comm.bcast(start0, root=0, size=8)
        else:
            start0 = yield from comm.bcast(None, root=0, size=8)
        result = SchemeResult(scheme=self.name)
        for i in range(self.nreps):
            win_start = start0 + i * window
            late = ctx.read_clock(g_clk) >= win_start
            # The operation is collective, so it runs regardless; a missed
            # window start only invalidates the *measurement*.  One long
            # outlier therefore cascades: the process is still busy when
            # the next windows open and keeps invalidating them.
            yield from ctx.wait_until_clock(g_clk, win_start)
            yield from operation(comm)
            if late:
                result.invalid += 1
                continue
            t_end = ctx.read_clock(g_clk)
            result.durations.append(t_end - win_start)
        return result


class RoundTimeScheme:
    """Algorithm 5: dynamically announced start times + fixed time slice."""

    name = "round_time"

    def __init__(
        self,
        global_clock_provider,
        max_time_slice: float = 5.0,
        max_nrep: int = 300,
        slack_factor: float = 3.0,
    ):
        """``slack_factor`` is the paper's ``B`` (≥ 1) applied to the
        estimated ``MPI_Bcast`` latency when picking the next start time."""
        if slack_factor < 1.0:
            raise ConfigurationError("slack_factor (B) must be >= 1")
        if max_nrep < 1:
            raise ConfigurationError("max_nrep must be >= 1")
        self.global_clock_provider = global_clock_provider
        self.max_time_slice = max_time_slice
        self.max_nrep = max_nrep
        self.slack_factor = slack_factor

    def _estimate_bcast_delivery(
        self, comm: "Communicator", g_clk: Clock, nreps: int = 10
    ) -> Generator:
        """End-to-end ``MPI_Bcast`` delivery time via the global clock.

        The root stamps its global time into the payload; every receiver
        computes (its own global reading − stamp); an allreduce takes the
        max across ranks and the max over repetitions.  Unlike a local
        start/stop measurement, this includes the tree propagation depth —
        which is exactly the slack the next-start announcement needs.
        """
        ctx = comm.ctx
        worst = 0.0
        for _ in range(nreps):
            stamp = (
                ctx.read_clock(g_clk) if comm.rank == 0 else None
            )
            stamp = yield from comm.bcast(stamp, root=0, size=8)
            delay = ctx.read_clock(g_clk) - stamp
            delay = yield from comm.allreduce(delay, op=max, size=8)
            worst = max(worst, delay)
        return worst

    def run(
        self, comm: "Communicator", operation: Operation
    ) -> Generator:
        ctx = comm.ctx
        g_clk: Clock = self.global_clock_provider(comm)
        # lat(MPI_Bcast): the scheme's control message, measured end-to-end.
        lat_bcast = yield from self._estimate_bcast_delivery(comm, g_clk)
        result = SchemeResult(scheme=self.name)
        t_start = ctx.read_clock(g_clk)
        nrep = 0
        while True:
            if comm.rank == 0:
                start_time = (
                    ctx.read_clock(g_clk) + self.slack_factor * lat_bcast
                )
                start_time = yield from comm.bcast(start_time, root=0, size=8)
            else:
                start_time = yield from comm.bcast(None, root=0, size=8)
            invalid = 1 if ctx.read_clock(g_clk) >= start_time else 0
            yield from ctx.wait_until_clock(g_clk, start_time)
            yield from operation(comm)
            t_end = ctx.read_clock(g_clk)
            out_of_time = (
                1 if (t_end - t_start) >= self.max_time_slice else 0
            )
            flags = yield from comm.allreduce(
                (invalid, out_of_time),
                op=lambda a, b: (a[0] | b[0], a[1] | b[1]),
                size=8,
            )
            if flags[0] == 0:
                result.durations.append(t_end - start_time)
                nrep += 1
            else:
                result.invalid += 1
            if flags[1] or nrep == self.max_nrep:
                break
        return result
