"""Adaptive repetition counts — the problem Round-Time dissolves.

The paper (Section V-A): "the question of how to choose this number of
repetitions remains".  Benchmark suites either hard-code the count or use
a convergence heuristic: keep measuring until the sample statistic is
stable.  :class:`AdaptiveBarrierScheme` implements the classic variant —
stop when the coefficient of variation (COV) of the recent window of
medians falls below a threshold — so the Round-Time scheme has a real
competitor to be compared against (see
``benchmarks/bench_ablation_stopping.py``).

The stopping decision must be collective: every rank computes its local
COV and an allreduce takes the *max* (everyone keeps going until everyone
is stable), exactly like ReproMPI's ``--runtime-check`` heuristics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.bench.estimate import Operation
from repro.bench.schemes import SchemeResult
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def coefficient_of_variation(samples: np.ndarray) -> float:
    """std / mean of a sample window (0 for a constant window)."""
    mean = float(np.mean(samples))
    if mean == 0.0:
        return 0.0
    return float(np.std(samples) / mean)


class AdaptiveBarrierScheme:
    """Barrier-based measurement with a COV stopping rule.

    Repetitions run in blocks of ``window``; after each block every rank
    computes the COV of its last ``window`` durations and the ranks
    allreduce the maximum.  Measurement stops when that maximum drops
    below ``threshold`` (and at least ``min_nreps`` repetitions were
    taken), or at ``max_nreps``.
    """

    name = "adaptive_barrier"

    def __init__(
        self,
        threshold: float = 0.05,
        window: int = 10,
        min_nreps: int = 20,
        max_nreps: int = 1000,
        barrier_algorithm: str = "tree",
    ) -> None:
        if threshold <= 0.0:
            raise ConfigurationError("threshold must be > 0")
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        if not 0 < min_nreps <= max_nreps:
            raise ConfigurationError(
                "need 0 < min_nreps <= max_nreps"
            )
        self.threshold = threshold
        self.window = window
        self.min_nreps = min_nreps
        self.max_nreps = max_nreps
        self.barrier_algorithm = barrier_algorithm

    def run(
        self, comm: "Communicator", operation: Operation
    ) -> Generator:
        ctx = comm.ctx
        result = SchemeResult(scheme=self.name)
        while True:
            for _ in range(self.window):
                yield from comm.barrier(algorithm=self.barrier_algorithm)
                t0 = ctx.wtime()
                yield from operation(comm)
                result.durations.append(ctx.wtime() - t0)
            n = len(result.durations)
            recent = np.asarray(result.durations[-self.window:])
            local_cov = coefficient_of_variation(recent)
            worst_cov = yield from comm.allreduce(
                local_cov, op=max, size=8
            )
            if n >= self.max_nreps:
                break
            if n >= self.min_nreps and worst_cov < self.threshold:
                break
        return result
