"""End-to-end benchmark orchestration.

``run_latency_benchmark`` is the composition the experiment modules use:
build a simulation, synchronize clocks once with a configurable algorithm,
then measure one collective operation at several message sizes with a
chosen suite emulation — returning one :class:`LatencyMeasurement` per
(suite, message size) cell, i.e. one bar of Fig. 7 / one point of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.suites import (
    SuiteReport,
    imb_report,
    osu_report,
    reprompi_report,
)
from repro.cluster.topology import Machine
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.simmpi.network import NetworkModel
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.base import ClockSyncAlgorithm


@dataclass
class LatencyMeasurement:
    """One measured cell: suite × operation × message size."""

    suite: str
    operation: str
    msize: int
    report: SuiteReport


def make_allreduce_op(
    msize: int, algorithm: str = "recursive_doubling"
) -> Callable:
    """An MPI_Allreduce operation closure for the measurement schemes."""

    def op(comm):
        yield from comm.allreduce(1.0, size=msize, algorithm=algorithm)

    return op


def run_latency_benchmark(
    machine: Machine,
    network: NetworkModel,
    suites: list[str],
    msizes: list[int],
    sync_algorithm: ClockSyncAlgorithm | None = None,
    operation_factory: Callable[[int], Callable] = make_allreduce_op,
    operation_name: str = "MPI_Allreduce",
    barrier_algorithm: str = "tree",
    nreps: int = 100,
    max_time_slice: float = 0.5,
    time_source: TimeSourceSpec = CLOCK_GETTIME,
    seed: int = 0,
    fabric=None,
    sink: EventSink | None = None,
    metrics: MetricsRegistry | None = None,
    stats_out: dict | None = None,
) -> list[LatencyMeasurement]:
    """Run the full pipeline; returns one measurement per suite × msize.

    A single simulated job first synchronizes clocks (when a global-clock
    suite is requested), then measures every (suite, msize) combination in
    sequence — mirroring how a real benchmarking campaign reuses one
    ``mpirun``.

    ``sink``/``metrics`` attach observability to the simulated job (see
    :mod:`repro.obs`).  When ``stats_out`` is given, it is filled with a
    run summary: the engine's counter snapshot under ``"engine"`` and, if
    the sync algorithm tracks rounds, its per-level RTT/residual summary
    under ``"sync"``.
    """
    needs_clock = any(s.startswith("reprompi") for s in suites)

    def main(ctx, comm):
        global_clock = None
        if needs_clock and sync_algorithm is not None:
            global_clock = yield from sync_algorithm.sync_clocks(
                comm, ctx.hardware_clock
            )
        provider = (lambda _comm: global_clock) if global_clock else None
        out = []
        for msize in msizes:
            op = operation_factory(msize)
            for suite in suites:
                if suite == "osu":
                    rep = yield from osu_report(
                        comm, op, nreps=nreps,
                        barrier_algorithm=barrier_algorithm,
                    )
                elif suite == "imb":
                    rep = yield from imb_report(
                        comm, op, nreps=nreps,
                        barrier_algorithm=barrier_algorithm,
                    )
                elif suite == "reprompi":
                    if provider is None:
                        raise ValueError(
                            "reprompi suite needs a sync_algorithm"
                        )
                    rep = yield from reprompi_report(
                        comm, op, provider,
                        max_time_slice=max_time_slice, max_nrep=nreps,
                    )
                elif suite == "reprompi_barrier":
                    if provider is None:
                        raise ValueError(
                            "reprompi_barrier suite needs a sync_algorithm"
                        )
                    rep = yield from reprompi_report(
                        comm, op, provider, scheme="barrier",
                        barrier_algorithm=barrier_algorithm, nreps=nreps,
                    )
                else:
                    raise ValueError(f"unknown suite {suite!r}")
                if comm.rank == 0:
                    out.append((suite, msize, rep))
        return out

    sim = Simulation(
        machine=machine,
        network=network,
        time_source=time_source,
        seed=seed,
        fabric=fabric,
        sink=sink,
        metrics=metrics,
    )
    result = sim.run(main)
    if stats_out is not None:
        stats_out["engine"] = result.engine_stats
        if sync_algorithm is not None:
            stats_out["sync"] = sync_algorithm.sync_stats_summary()
    measurements = []
    for suite, msize, rep in result.values[0]:
        measurements.append(
            LatencyMeasurement(
                suite=suite,
                operation=operation_name,
                msize=msize,
                report=rep,
            )
        )
    return measurements
