"""Shim for environments without the `wheel` package (see pyproject.toml)."""
from setuptools import setup

setup()
