"""Clock-health telemetry walkthrough: sampling, detectors, HTML report.

Runs the same fault-recovery comparison twice — once with no periodic
resync, once re-synchronizing every 8 simulated seconds — against an
NTP-style 500 microsecond clock step, with a :class:`TimeSeriesBank`
attached (see ``repro.obs.timeseries``):

1. the engine, sync algorithms, resync loop, and fault evaluator deposit
   time series into the bank (per-rank estimated-vs-true clock error,
   drift-model slopes, sync-round durations, NIC backlog) plus fault and
   resync markers;
2. the anomaly detectors (``repro.obs.health``) scan the error series for
   drift excursions, desynchronization breaches, slow fault recovery,
   and stuck clock estimates;
3. the whole run is written as a self-contained ``report.html``
   (inline-SVG sparklines, no external assets) plus machine-readable
   ``report.json``.

Run:  python examples/health_report.py
"""

from repro.faults.evaluate import run_recovery
from repro.faults.scenarios import make_scenario
from repro.obs import (
    MetricsRegistry,
    TimeSeriesBank,
    build_report,
    default_metrics,
    default_timeseries,
    evaluate_health,
)
from repro.obs.report import write_report

bank = TimeSeriesBank()
metrics = MetricsRegistry()

if __name__ == "__main__":
    scenario = make_scenario("ntp_step")
    with default_timeseries(bank), default_metrics(metrics):
        for resync_age in (None, 8.0):
            outcome = run_recovery(
                scenario,
                resync_age=resync_age,
                horizon=40.0,
                sample_interval=1.0,
                num_nodes=2,
                ranks_per_node=1,
                seed=0,
            )
            policy = "baseline" if resync_age is None else "resync"
            worst = max(err for _, err in outcome.samples)
            print(f"{policy:>9}: max clock spread = "
                  f"{worst * 1e6:8.1f} us "
                  f"(tail {outcome.tail_max() * 1e6:.1f} us)")

    # The detectors read the sampled series; nothing re-runs.
    verdict = evaluate_health(bank)
    print(f"\nhealth status: {verdict.status} "
          f"({len(verdict.findings)} findings over "
          f"{verdict.series_scanned} error series)")
    for name, summary in verdict.detectors.items():
        print(f"  {name}: {summary['findings']} findings "
              f"(worst {summary['worst']})")
    for finding in verdict.findings[:5]:
        print(f"  [{finding.severity}] {finding.series}: "
              f"{finding.message}")

    report = build_report(
        bank=bank,
        metrics=metrics,
        verdict=verdict,
        meta={"targets": ["fault_recovery"], "scenario": "ntp_step"},
    )
    json_path, html_path = write_report(report, ".")
    print(f"\nwrote {json_path} and {html_path} "
          f"— open the HTML in any browser")
