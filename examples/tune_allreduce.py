"""Tuning MPI_Allreduce: why the measurement scheme changes the winner.

The paper's motivating scenario (Section I, PGMPITuneLib): a tuner must
pick the fastest MPI_Allreduce implementation for small payloads.  This
example measures three allreduce algorithms twice —

* the way OSU/IMB would (barrier before every repetition, mean), and
* the way ReproMPI's Round-Time scheme would (global-clock start lines,
  median of per-repetition collective durations)

— and prints both rankings.  With small payloads the barrier's exit
imbalance contaminates the barrier-based numbers, so the two schemes can
disagree about the winner; the Round-Time ranking is the trustworthy one.

Run:  python examples/tune_allreduce.py
"""

from repro.analysis.reporting import Table, format_table
from repro.bench.schemes import BarrierScheme, RoundTimeScheme
from repro.cluster import titan
from repro.simmpi import Simulation
from repro.sync.hierarchical import h2hca

ALGORITHMS = ("recursive_doubling", "ring", "reduce_bcast")
MSIZE = 8  # bytes — the AMG2013 regime the paper highlights


def make_op(algorithm):
    def op(comm):
        yield from comm.allreduce(1.0, size=MSIZE, algorithm=algorithm)

    return op


def main(ctx, comm):
    sync = h2hca(nfitpoints=30, fitpoint_spacing=2e-3)
    global_clock = yield from sync.sync_clocks(comm, ctx.hardware_clock)

    rows = []
    for algorithm in ALGORITHMS:
        op = make_op(algorithm)
        barrier_scheme = BarrierScheme(barrier_algorithm="linear",
                                       nreps=30)
        barrier_result = yield from barrier_scheme.run(comm, op)
        rt_scheme = RoundTimeScheme(lambda c: global_clock,
                                    max_time_slice=0.5, max_nrep=30)
        rt_result = yield from rt_scheme.run(comm, op)
        local = (algorithm, barrier_result.mean(), rt_result.median())
        gathered = yield from comm.gather(local, root=0, size=32)
        if comm.rank == 0:
            barrier_mean = sum(g[1] for g in gathered) / len(gathered)
            rt_median = max(g[2] for g in gathered)
            rows.append((algorithm, barrier_mean, rt_median))
    return rows if comm.rank == 0 else None


if __name__ == "__main__":
    spec = titan()
    sim = Simulation(
        machine=spec.machine(num_nodes=8, ranks_per_node=8),
        network=spec.network(),
        seed=7,
    )
    rows = sim.run(main).values[0]

    table = Table(
        title=f"Tuning MPI_Allreduce ({MSIZE} B payload, "
              f"{sim.machine.num_ranks} processes, Titan-like)",
        columns=["algorithm", "barrier-based [us]", "Round-Time [us]"],
    )
    for algorithm, barrier_mean, rt_median in rows:
        table.add_row(algorithm, f"{barrier_mean * 1e6:.2f}",
                      f"{rt_median * 1e6:.2f}")
    print(format_table(table))

    by_barrier = min(rows, key=lambda r: r[1])[0]
    by_rt = min(rows, key=lambda r: r[2])[0]
    print(f"\nwinner (barrier-based measurement): {by_barrier}")
    print(f"winner (Round-Time measurement)   : {by_rt}")
    if by_barrier != by_rt:
        print("-> the measurement scheme changed the tuning decision!")
    else:
        print("-> both schemes agree here; the paper shows cases where "
              "they do not.")
