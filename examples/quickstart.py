"""Quickstart: synchronize clocks on a simulated cluster and check them.

Builds a small Jupiter-like machine (8 nodes x 4 ranks), runs the paper's
HCA3 algorithm to obtain a logical global clock on every rank, and then
verifies the clock quality with CHECK_CLOCK_ACCURACY (Algorithm 6) right
after the synchronization and again 10 seconds later.

Run:  python examples/quickstart.py
"""

from repro.analysis.accuracy import check_clock_accuracy, max_abs_offset
from repro.cluster import jupiter
from repro.simmpi import Simulation
from repro.sync import HCA3Sync, SKaMPIOffset


def main(ctx, comm):
    """SPMD body: every simulated rank executes this generator."""
    algorithm = HCA3Sync(
        offset_alg=SKaMPIOffset(nexchanges=20),
        nfitpoints=50,
        recompute_intercept=True,
        fitpoint_spacing=5e-3,
    )
    t_start = ctx.now
    global_clock = yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
    duration = ctx.now - t_start

    offsets = yield from check_clock_accuracy(
        comm, global_clock, SKaMPIOffset(nexchanges=20),
        wait_times=(0.0, 10.0),
    )
    return duration, offsets


if __name__ == "__main__":
    spec = jupiter()
    sim = Simulation(
        machine=spec.machine(num_nodes=8, ranks_per_node=4),
        network=spec.network(),
        seed=2024,
    )
    result = sim.run(main)

    duration = max(v[0] for v in result.values)
    offsets = result.values[0][1]  # rank 0 holds the measurements
    print(f"machine      : {sim.machine!r}")
    print(f"processes    : {sim.machine.num_ranks}")
    print(f"sync duration: {duration:.3f} s (HCA3, O(log p) rounds)")
    for wait, per_client in offsets.items():
        worst = max_abs_offset(per_client) * 1e6
        print(f"max |offset| {wait:4.0f} s after sync: {worst:8.3f} us")
    print(f"p2p messages : {result.messages}")
