"""Algorithm crossover sweep: which collective variant wins at which size?

The paper's tuning context (PGMPITuneLib) selects among semantically
equivalent implementations per message size.  This example sweeps
MPI_Bcast and MPI_Allreduce variants across payloads on a Jupiter-like
machine, measured with the Round-Time scheme, and prints the winner per
size — showing the classic latency/bandwidth crossover (binomial and
recursive-doubling win small payloads; segmented/Rabenseifner win large
ones).

Run:  python examples/algorithm_crossover.py
"""

from repro.analysis.reporting import Table, format_table
from repro.bench.schemes import RoundTimeScheme
from repro.cluster import jupiter
from repro.simmpi import Simulation
from repro.sync.hierarchical import h2hca

BCASTS = ("binomial", "scatter_allgather")
ALLREDUCES = ("recursive_doubling", "rabenseifner", "ring")
MSIZES = (8, 1024, 64 << 10, 1 << 20)


def measure(op_factory, algorithms, msizes):
    spec = jupiter()
    sim = Simulation(
        machine=spec.machine(num_nodes=8, ranks_per_node=4),
        network=spec.network(),
        seed=5,
    )

    def main(ctx, comm):
        sync = h2hca(nfitpoints=20, fitpoint_spacing=1e-3)
        g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        cells = {}
        for msize in msizes:
            for algorithm in algorithms:
                op = op_factory(algorithm, msize)
                scheme = RoundTimeScheme(lambda c: g_clk,
                                         max_time_slice=0.05,
                                         max_nrep=20)
                local = yield from scheme.run(comm, op)
                worst = yield from comm.allreduce(
                    local.median(), op=max, size=8
                )
                if comm.rank == 0:
                    cells[(msize, algorithm)] = worst
        return cells if comm.rank == 0 else None

    return sim.run(main).values[0]


def report(title, cells, algorithms, msizes):
    table = Table(
        title=title,
        columns=["msize [B]"] + [f"{a} [us]" for a in algorithms]
        + ["winner"],
    )
    for msize in msizes:
        row = [cells[(msize, a)] for a in algorithms]
        winner = algorithms[row.index(min(row))]
        table.add_row(
            msize, *(f"{v * 1e6:.1f}" for v in row), winner
        )
    print(format_table(table))
    print()


if __name__ == "__main__":
    def bcast_op(algorithm, msize):
        def op(comm):
            yield from comm.bcast(1, algorithm=algorithm, size=msize)

        return op

    def allreduce_op(algorithm, msize):
        def op(comm):
            yield from comm.allreduce(1.0, algorithm=algorithm,
                                      size=msize)

        return op

    cells = measure(bcast_op, BCASTS, MSIZES)
    report("MPI_Bcast variants (32 processes, Jupiter-like)", cells,
           BCASTS, MSIZES)
    cells = measure(allreduce_op, ALLREDUCES, MSIZES)
    report("MPI_Allreduce variants (32 processes, Jupiter-like)", cells,
           ALLREDUCES, MSIZES)
