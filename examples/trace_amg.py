"""Tracing AMG2013's MPI_Allreduce with local vs global clocks (Fig. 10).

Runs the AMG-like solver loop twice under a tracing library: once with raw
``clock_gettime`` timestamps and once with an H2HCA global clock.  For the
10th iteration's allreduce it prints the per-process Gantt bars — with
local clocks the start offsets are astronomically large (node boot-time
differences), with the global clock the ~10 us events line up.

Run:  python examples/trace_amg.py
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster import jupiter
from repro.simmpi import Simulation
from repro.sync.hierarchical import h2hca
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.gantt import gantt_bars, start_spread, visibility_ratio
from repro.trace.tracer import Tracer

ITERATION = 9  # the paper's "10th iteration"


def make_main(use_global_clock):
    def main(ctx, comm):
        if use_global_clock:
            sync = h2hca(nfitpoints=30, fitpoint_spacing=2e-3)
            clock = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        else:
            clock = ctx.hardware_clock
        tracer = Tracer(clock, comm.rank)
        yield from amg_iteration_loop(
            comm, tracer, AMGConfig(niterations=12)
        )
        events = yield from tracer.gather_events(comm)
        return events

    return main


def run_once(use_global_clock):
    spec = jupiter()
    sim = Simulation(
        machine=spec.machine(num_nodes=9, ranks_per_node=8),
        network=spec.network(),
        seed=11,
    )
    events = sim.run(make_main(use_global_clock)).values[0]
    return events, gantt_bars(events, "MPI_Allreduce", ITERATION)


if __name__ == "__main__":
    from repro.trace.export import to_chrome_trace

    for label, use_global in (("local clock_gettime", False),
                              ("H2HCA global clock", True)):
        events, bars = run_once(use_global)
        print(f"\n=== 10th MPI_Allreduce, {label} ===")
        spread = start_spread(bars)
        vis = visibility_ratio(bars)
        print(f"start-time spread across processes: {spread * 1e6:.3g} us")
        print(f"visibility (duration / spread)    : {vis:.3g} "
              f"({'events visible' if vis > 0.05 else 'events INVISIBLE'})")
        table = Table(
            title="first 8 processes",
            columns=["rank", "start [us]", "duration [us]"],
        )
        for bar in bars[:8]:
            table.add_row(bar.rank, f"{bar.start * 1e6:.3g}",
                          f"{bar.duration * 1e6:.2f}")
        print(format_table(table))
        if use_global:
            # Viewable in any Perfetto/chrome://tracing-style viewer.
            path = "amg_trace_global_clock.json"
            with open(path, "w") as fh:
                fh.write(to_chrome_trace(events))
            print(f"(full trace written to {path})")
