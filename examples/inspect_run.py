"""Observability walkthrough: events, metrics, sync stats, Perfetto export.

One seeded H2HCA-synchronized AMG run with the full observability stack
attached (see ``repro.obs``):

1. a :class:`RecordingSink` captures every engine event (message sends and
   deliveries, blocked intervals, NIC queueing, collective enter/exit);
2. a :class:`MetricsRegistry` aggregates counters/histograms per rank
   (bytes on the wire, mailbox depth, NIC backlog);
3. the sync algorithm's :class:`SyncStatsCollector` records every
   LEARN_CLOCK_MODEL round (RTT per fit point, fit residuals, slopes);
4. the run is exported twice as Chrome trace-event JSON — once through
   the raw local clocks, once through the synchronized global clocks.
   Load both files in https://ui.perfetto.dev for the paper's Fig. 10
   skewed-vs-corrected diff.

Run:  python examples/inspect_run.py
"""

from repro.cluster import jupiter
from repro.obs import MetricsRegistry, RecordingSink
from repro.obs.chrome_trace import export_chrome_trace
from repro.obs.metrics import format_summary
from repro.simmpi import Simulation
from repro.sync.hierarchical import h2hca
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.tracer import Tracer

sink = RecordingSink()
metrics = MetricsRegistry()
sync_alg = h2hca(nfitpoints=15, fitpoint_spacing=2e-3)


def main(ctx, comm):
    clock = yield from sync_alg.sync_clocks(comm, ctx.hardware_clock)
    tracer = Tracer(clock, comm.rank)
    yield from amg_iteration_loop(comm, tracer, AMGConfig(niterations=12))
    events = yield from tracer.gather_events(comm)
    return events, clock


if __name__ == "__main__":
    spec = jupiter()
    sim = Simulation(
        machine=spec.machine(4, 2),
        network=spec.network(),
        seed=0,
        sink=sink,
        metrics=metrics,
    )
    result = sim.run(main)

    # 1. Raw engine events, by type.
    print("=== engine events ===")
    by_type: dict[str, int] = {}
    for event in sink.events:
        by_type[type(event).__name__] = by_type.get(
            type(event).__name__, 0) + 1
    for name in sorted(by_type):
        print(f"  {name}: {by_type[name]}")
    print(f"engine stats: {result.engine_stats}")

    # 2. Metrics: job-level aggregates over the per-rank series.
    print("\n=== metrics (job-level aggregates) ===")
    for name in ("engine.bytes.sent", "engine.bytes.delivered"):
        print(f"  {name}: {metrics.merged_counter(name):.0f} B "
              f"over ranks {metrics.ranks_of(name)}")
    depth = metrics.merged_histogram("engine.mailbox.depth")
    if depth.count:
        print(f"  engine.mailbox.depth: n={depth.count} "
              f"mean={depth.mean:.2f} max={depth.max_value:.0f}")
    print(format_summary(metrics, names=["engine.rendezvous.stalls"]))

    # 3. Sync-round statistics straight from the algorithm.
    print("\n=== sync rounds (per hierarchy level) ===")
    for level, stats in sorted(sync_alg.sync_stats_summary().items()):
        print(f"  {level}: rounds={stats['rounds']:.0f} "
              f"fitpoints={stats['fitpoints']:.0f} "
              f"mean_rtt={stats['mean_rtt'] * 1e6:.2f} us "
              f"max|residual|={stats['max_abs_residual'] * 1e6:.3f} us")

    # 4. Fig. 10 as a two-file Perfetto diff.
    trace_events = result.values[0][0]
    global_clocks = [clk for (_ev, clk) in result.values]
    for fname, clock_of in (
        ("inspect_raw_local_clock.json", lambda r: result.clocks[r]),
        ("inspect_global_clock.json", lambda r: global_clocks[r]),
    ):
        n = export_chrome_trace(
            fname, trace_events=trace_events, engine_events=sink.events,
            clock_of=clock_of, include_messages=False,
        )
        print(f"\nwrote {fname} ({n} records) — open in ui.perfetto.dev")
