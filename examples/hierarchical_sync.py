"""Hierarchical synchronization: flat HCA3 vs H2HCA vs H3HCA.

Demonstrates the HlHCA scheme on a machine whose *sockets* have distinct
time sources: the two-level H2HCA (which clones the node leader's clock to
all cores via ClockPropSync) silently produces a broken global clock,
while the three-level H3HCA inserts a per-socket synchronization level and
stays correct — the semantic-correctness point of Section IV.

Run:  python examples/hierarchical_sync.py
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster import jupiter
from repro.simmpi import Simulation
from repro.sync import HCA3Sync, SKaMPIOffset
from repro.sync.hierarchical import h2hca, h3hca


def make_main(algorithm_factory):
    def main(ctx, comm):
        algorithm = main.algs.setdefault(ctx.rank, algorithm_factory())
        t0 = ctx.now
        clk = yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return clk, ctx.now - t0

    main.algs = {}
    return main


def evaluate(name, algorithm_factory, clocks_per):
    spec = jupiter()
    # Fully occupied nodes: 2 sockets x 8 cores, so ranks span BOTH
    # sockets — required for the per-socket-clock scenario below.
    sim = Simulation(
        machine=spec.machine(num_nodes=6, ranks_per_node=16),
        network=spec.network(),
        seed=3,
        clocks_per=clocks_per,
    )
    result = sim.run(make_main(algorithm_factory))
    clocks = [v[0] for v in result.values]
    duration = max(v[1] for v in result.values)
    t_eval = duration + 1.0
    ref = clocks[0].read(t_eval)
    worst = max(abs(c.read(t_eval) - ref) for c in clocks[1:])
    return name, duration, worst


if __name__ == "__main__":
    flat = lambda: HCA3Sync(offset_alg=SKaMPIOffset(15), nfitpoints=30,
                            fitpoint_spacing=2e-3)
    two_level = lambda: h2hca(nfitpoints=30, fitpoint_spacing=2e-3)
    three_level = lambda: h3hca(nfitpoints=30, fitpoint_spacing=2e-3)

    print("=== shared node clock (the common case) ===")
    table = Table(title="Jupiter-like, 6 nodes x 16 ranks",
                  columns=["scheme", "duration [s]", "max offset [us]"])
    for name, factory in (("flat HCA3", flat), ("H2HCA", two_level),
                          ("H3HCA", three_level)):
        name, duration, worst = evaluate(name, factory, clocks_per="node")
        table.add_row(name, f"{duration:.3f}", f"{worst * 1e6:.3f}")
    print(format_table(table))

    print("\n=== per-SOCKET clocks (ClockPropSync precondition broken "
          "for H2HCA) ===")
    table = Table(title="Jupiter-like, per-socket time sources",
                  columns=["scheme", "duration [s]", "max offset [us]"])
    for name, factory in (("H2HCA (incorrect!)", two_level),
                          ("H3HCA", three_level)):
        name, duration, worst = evaluate(name, factory,
                                         clocks_per="socket")
        table.add_row(name, f"{duration:.3f}", f"{worst * 1e6:.3f}")
    print(format_table(table))
    print("\nH2HCA's ClockPropSync clones the node leader's model onto "
          "cores whose oscillator differs -> the clone inherits the "
          "leader's boot-time offset wholesale (errors of seconds to "
          "hours); H3HCA adds the per-socket level and stays accurate.")
