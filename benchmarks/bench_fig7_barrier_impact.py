"""Fig. 7: measured allreduce latency by suite x barrier algorithm."""

from repro.experiments import fig7_barrier_impact

from conftest import emit


def test_fig7_barrier_impact(benchmark, scale):
    result = benchmark.pedantic(
        fig7_barrier_impact.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig7_barrier_impact.format_result(result))
    # Paper shape: the barrier algorithm visibly changes the reported
    # latency, and 'tree' wins most (paper: all) cells.
    wins = sum(
        result.best_barrier(s, m) == "tree"
        for s in fig7_barrier_impact.SUITES
        for m in fig7_barrier_impact.MSIZES
    )
    assert wins >= 5
