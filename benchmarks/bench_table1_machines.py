"""Table I: machine presets and network-calibration sanity check."""

from repro.experiments import table1_machines

from conftest import emit


def test_table1_machines(benchmark, scale):
    rows = benchmark.pedantic(
        table1_machines.run, rounds=1, iterations=1
    )
    emit(table1_machines.format_result(rows))
    jup = next(r for r in rows if r.name == "jupiter")
    # Paper: Jupiter's IB QDR ping-pong is 3-4 us.
    assert 2.0 < jup.measured_pingpong_us < 7.0
