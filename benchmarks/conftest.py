"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one table/figure of the paper: it runs
the corresponding experiment under ``pytest-benchmark`` (timing the full
reproduction pipeline) and prints the reproduced rows/series.  Run with::

    pytest benchmarks/ --benchmark-only -s

``REPRO_BENCH_SCALE=default`` switches from the CI-friendly quick scale to
the fuller reproduction scale recorded in EXPERIMENTS.md.
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def scale():
    return bench_scale()


def emit(text: str) -> None:
    """Print a reproduced table under the benchmark's own banner."""
    print()
    print(text)
