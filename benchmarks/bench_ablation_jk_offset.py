"""Ablation: SKaMPI-Offset vs Mean-RTT-Offset inside JK.

The paper calls this a side contribution: swapping JK's Mean-RTT-Offset
for SKaMPI-Offset "boosted the global clock precision of JK".  The
mechanism is minimum-delay filtering: a min-filtered ping-pong is immune
to jitter tails that corrupt an averaged RTT estimate.
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    MACHINE_TIME_SOURCES,
    resolve_scale,
    run_sync_accuracy_campaign,
)

from conftest import emit


def run_ablation(scale):
    sc = resolve_scale(scale)
    n = sc.nfitpoints
    e = max(5, sc.nexchanges // 2)
    labels = [
        f"jk/{n}/skampi_offset/{e}",
        f"jk/{n}/mean_rtt_offset/{e}",
    ]
    return run_sync_accuracy_campaign(
        spec=JUPITER, labels=labels, scale=sc, wait_times=(0.0, 10.0),
        seed=0, time_source=MACHINE_TIME_SOURCES["jupiter"],
    )


def test_ablation_jk_offset_algorithm(benchmark, scale):
    result = benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                                iterations=1)
    table = Table(
        title="Ablation: JK with SKaMPI-Offset vs Mean-RTT-Offset",
        columns=["configuration", "max offset @0s [us]",
                 "max offset @10s [us]"],
    )
    for label in result.by_label():
        table.add_row(
            label,
            f"{result.mean_offset(label, 0.0) * 1e6:.3f}",
            f"{result.mean_offset(label, 10.0) * 1e6:.3f}",
        )
    emit(format_table(table))
    skampi = next(l for l in result.by_label() if "skampi" in l)
    meanrtt = next(l for l in result.by_label() if "mean_rtt" in l)
    # Paper shape: SKaMPI-Offset improves JK's precision.
    assert result.mean_offset(skampi, 0.0) <= result.mean_offset(
        meanrtt, 0.0
    )
