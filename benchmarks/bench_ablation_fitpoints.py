"""Ablation: number of fit points vs accuracy and duration.

The regression's slope error scales with the fit-point count and the
measurement baseline, so halving the fit points roughly halves the sync
duration at the cost of a worse 10-second extrapolation — the trade-off
visible between the paired configurations of Figs. 4-6.
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    MACHINE_TIME_SOURCES,
    resolve_scale,
    run_sync_accuracy_campaign,
)

from conftest import emit


def run_ablation(scale):
    sc = resolve_scale(scale)
    e = sc.nexchanges
    budgets = [max(4, sc.nfitpoints // 4), sc.nfitpoints // 2,
               sc.nfitpoints, sc.nfitpoints * 2]
    labels = [f"hca3/{n}/skampi_offset/{e}" for n in budgets]
    return run_sync_accuracy_campaign(
        spec=JUPITER, labels=labels, scale=sc, wait_times=(0.0, 10.0),
        seed=0, time_source=MACHINE_TIME_SOURCES["jupiter"],
    )


def test_ablation_fitpoints(benchmark, scale):
    result = benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                                iterations=1)
    table = Table(
        title="Ablation: HCA3 fit-point budget",
        columns=["configuration", "duration [s]",
                 "max offset @10s [us]"],
    )
    rows = []
    for label in result.by_label():
        nfit = int(label.split("/")[1])
        rows.append((nfit, label))
    for nfit, label in sorted(rows):
        table.add_row(
            label,
            f"{result.mean_duration(label):.3f}",
            f"{result.mean_offset(label, 10.0) * 1e6:.3f}",
        )
    emit(format_table(table))
    # Duration must scale with the fit-point budget.
    ordered = [label for _, label in sorted(rows)]
    durations = [result.mean_duration(l) for l in ordered]
    assert durations == sorted(durations)
