"""Fig. 4: H2HCA vs flat HCA3 on Jupiter."""

from repro.experiments import fig4_hier_jupiter

from conftest import emit


def test_fig4_hier_jupiter(benchmark, scale):
    result = benchmark.pedantic(
        fig4_hier_jupiter.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig4_hier_jupiter.format_result(result))
    by = result.by_label()
    flat = sorted(l for l in by if not l.startswith("Top"))
    hier = sorted(l for l in by if l.startswith("Top"))
    # Paper shape: the hierarchical composition reduces the sync time at a
    # matched fit-point budget without losing accuracy.
    for f, h in zip(flat, hier):
        assert result.mean_duration(h) < result.mean_duration(f)
        assert result.mean_offset(h, 0.0) < 5e-6
