"""Performance-guideline verification (the paper's refs [5, 6]).

Measures both sides of the standard self-consistent guidelines
(``Allreduce ≼ Reduce + Bcast`` etc.) with the Round-Time scheme on a
Jupiter-like machine and reports violations — the workflow PGMPITuneLib
automates, and the reason the paper cares about trustworthy latency
measurement in the first place.
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import MACHINE_TIME_SOURCES, resolve_scale
from repro.tuning.guidelines import STANDARD_GUIDELINES, check_guidelines

from conftest import emit


def run_check(scale):
    sc = resolve_scale(scale)
    return check_guidelines(
        machine=JUPITER.machine(sc.num_nodes, sc.ranks_per_node),
        network=JUPITER.network(),
        msizes=(8, 1024),
        nreps=20 if sc.nmpiruns <= 3 else 50,
        time_source=MACHINE_TIME_SOURCES["jupiter"],
    )


def test_performance_guidelines(benchmark, scale):
    report = benchmark.pedantic(run_check, args=(scale,), rounds=1,
                                iterations=1)
    table = Table(
        title="Self-consistent performance guidelines (Round-Time "
              "measurements)",
        columns=["guideline", "msize [B]", "specialized [us]",
                 "mock [us]", "holds?"],
    )
    for (name, msize), (spec, mock) in sorted(report.measured.items()):
        table.add_row(
            name, msize, f"{spec * 1e6:.2f}", f"{mock * 1e6:.2f}",
            "yes" if spec <= 1.05 * mock else "VIOLATED",
        )
    emit(format_table(table))
    assert len(report.measured) == len(STANDARD_GUIDELINES) * 2
    # A sensibly tuned library holds the guidelines at small payloads.
    assert not [
        v for v in report.violations(tolerance=0.25) if v[1] == 8
    ]
