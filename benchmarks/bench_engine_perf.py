"""CLI: measure engine throughput + campaign wall time; track a baseline.

Usage (from the repo root, with ``src`` on ``PYTHONPATH``)::

    # Record the current tree (engine micro + serial & parallel fig3):
    python benchmarks/bench_engine_perf.py --record current --quick

    # Record a pre-optimization baseline from a worktree of an older
    # commit (this script carries an inline fallback of the workload so
    # it also runs against trees that predate repro.perf):
    PYTHONPATH=/path/to/old/src python benchmarks/bench_engine_perf.py \
        --record baseline --quick --output BENCH_engine.json

    # Show earliest-vs-latest speedups (exits 1 if < --min-speedup):
    python benchmarks/bench_engine_perf.py --compare

Results accumulate in ``BENCH_engine.json`` as an **append-only
trajectory** (format 2, oldest first): every ``--record`` appends a new
entry, so the history — including the original pre-optimization
baseline — survives re-records.  ``python -m repro.perf.regress`` gates
the latest entry against the best prior one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    from repro.perf import (
        campaign_benchmark,
        engine_benchmark,
        load_bench,
        record_bench,
        speedup,
    )
    HAVE_PERF_PKG = True
except ImportError:
    # Pre-optimization tree: repro.perf does not exist there.  Re-create
    # the exact workloads inline using only APIs present in both trees,
    # so baseline and current entries measure the same thing.
    import platform
    import time

    from repro.cluster.netmodels import infiniband_qdr
    from repro.cluster.topology import Machine
    from repro.simmpi.simulation import Simulation

    HAVE_PERF_PKG = False
    RING_SIZES = (8, 64, 8, 1024, 8, 65536)

    def _ring_main(nrounds):
        def main(ctx, comm):
            n = ctx.nprocs
            right = (ctx.rank + 1) % n
            left = (ctx.rank - 1) % n
            for r in range(nrounds):
                size = RING_SIZES[r % len(RING_SIZES)]
                yield from comm.sendrecv(
                    dest=right, send_tag=r, size=size, source=left
                )
                if r % 64 == 63:
                    yield from comm.barrier()
            total = yield from comm.allreduce(ctx.rank)
            return total

        return main

    def engine_benchmark(num_nodes=8, ranks_per_node=4, nrounds=400,
                         seed=0):
        machine = Machine(
            num_nodes=num_nodes,
            sockets_per_node=1,
            cores_per_socket=ranks_per_node,
            ranks_per_node=ranks_per_node,
            name="perfbox",
        )
        sim = Simulation(
            machine=machine, network=infiniband_qdr(), seed=seed
        )
        t0 = time.perf_counter()
        result = sim.run(_ring_main(nrounds))
        wall = time.perf_counter() - t0
        return {
            "workload": "ring",
            "num_nodes": num_nodes,
            "ranks_per_node": ranks_per_node,
            "nrounds": nrounds,
            "seed": seed,
            "wall_s": wall,
            "messages": result.messages,
            "msgs_per_sec": result.messages / wall if wall > 0 else 0.0,
        }

    def campaign_benchmark(scale="quick", jobs=1, seed=0):
        from repro.experiments import fig3_flat_algorithms

        t0 = time.perf_counter()
        result = fig3_flat_algorithms.run(scale=scale, seed=seed)
        wall = time.perf_counter() - t0
        return {
            "workload": "fig3_campaign",
            "scale": scale,
            "jobs": 1,
            "seed": seed,
            "wall_s": wall,
            "nruns": len(result.runs),
        }

    def _upgrade(data):
        # Format 1 kept entries as a {label: entry} dict; the trajectory
        # (format 2) keeps an append-only oldest-first list.
        entries = data.get("entries")
        if isinstance(entries, list):
            data.setdefault("format", 2)
            return data
        upgraded = []
        for label, entry in (entries or {}).items():
            entry = dict(entry)
            entry["label"] = label
            upgraded.append(entry)
        upgraded.sort(key=lambda e: (
            e.get("recorded_at", ""), e.get("label") != "baseline"
        ))
        return {
            "benchmark": data.get("benchmark", "engine_perf"),
            "format": 2,
            "entries": upgraded,
        }

    def load_bench(path):
        if not os.path.exists(path):
            return {"benchmark": "engine_perf", "format": 2, "entries": []}
        with open(path) as fh:
            return _upgrade(json.load(fh))

    def record_bench(label, entry, path):
        data = load_bench(path)
        entry = dict(entry)
        entry["label"] = label
        entry.setdefault(
            "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S")
        )
        entry.setdefault("python", platform.python_version())
        entry.setdefault("cpus", os.cpu_count())
        data["entries"].append(entry)
        with open(path, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return data

    def speedup(data, metric="engine"):
        entries = _upgrade(data).get("entries", [])
        if metric == "engine":
            rates = [
                e["engine"]["msgs_per_sec"] for e in entries
                if e.get("engine", {}).get("msgs_per_sec")
            ]
            return rates[-1] / rates[0] if len(rates) >= 2 else None
        walls = [
            min(
                e[key]["wall_s"]
                for key in ("campaign", "campaign_parallel")
                if e.get(key, {}).get("wall_s")
            )
            for e in entries
            if any(
                e.get(key, {}).get("wall_s")
                for key in ("campaign", "campaign_parallel")
            )
        ]
        return walls[0] / walls[-1] if len(walls) >= 2 else None


def default_output() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_engine.json",
    )


def run_record(args) -> int:
    engine_rounds = 400 if args.quick else 2000
    print(f"[{args.record}] engine micro ({engine_rounds} rounds) ...",
          flush=True)
    kwargs = {}
    if HAVE_PERF_PKG:
        if args.zones:
            kwargs["zones"] = True
        kwargs["event_queue"] = args.queue
        kwargs["delay_mode"] = args.delay_mode
    engine = engine_benchmark(nrounds=engine_rounds, seed=args.seed,
                              **kwargs)
    print(f"  {engine['messages']} messages in {engine['wall_s']:.3f}s "
          f"-> {engine['msgs_per_sec']:,.0f} msgs/s")
    scale = "quick" if args.quick else "default"
    print(f"[{args.record}] fig3 campaign ({scale}, serial) ...",
          flush=True)
    campaign = campaign_benchmark(scale=scale, jobs=1, seed=args.seed)
    print(f"  {campaign['wall_s']:.2f}s for {campaign['nruns']} runs")
    entry = {"engine": engine, "campaign": campaign,
             "tree": "current" if HAVE_PERF_PKG else "fallback"}
    if HAVE_PERF_PKG and args.service:
        from repro.perf import service_benchmark

        print(f"[{args.record}] clock service ({scale}) ...", flush=True)
        service = service_benchmark(scale=scale, seed=args.seed)
        print(f"  {service['queries']} queries in "
              f"{service['wall_s']:.3f}s -> "
              f"{service['queries_per_sec']:,.0f} queries/s")
        entry["service"] = service
    if HAVE_PERF_PKG and args.jobs and args.jobs != 1:
        print(f"[{args.record}] fig3 campaign ({scale}, "
              f"jobs={args.jobs}) ...", flush=True)
        par = campaign_benchmark(
            scale=scale, jobs=args.jobs, seed=args.seed
        )
        print(f"  {par['wall_s']:.2f}s for {par['nruns']} runs")
        entry["campaign_parallel"] = par
    data = record_bench(args.record, entry, args.output)
    print(f"recorded '{args.record}' -> {args.output} "
          f"({len(data['entries'])} entries)")
    return 0


def run_compare(args) -> int:
    data = load_bench(args.output)
    eng = speedup(data, "engine")
    camp = speedup(data, "campaign")
    if eng is None:
        print("compare: need >= 2 trajectory entries with engine data "
              f"in {args.output}", file=sys.stderr)
        return 1
    print(f"engine event-loop: {eng:.2f}x msgs/sec vs earliest entry")
    if camp is not None:
        print(f"campaign wall: {camp:.2f}x vs earliest entry")
    if eng < args.min_speedup:
        print(f"FAIL: engine speedup {eng:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", metavar="LABEL",
                        help="run the benchmarks and store the entry "
                             "under LABEL (e.g. baseline, current)")
    parser.add_argument("--compare", action="store_true",
                        help="print current-vs-baseline speedups")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (quick scale)")
    parser.add_argument("--zones", action="store_true",
                        help="attach a per-zone wall-time breakdown to "
                             "the engine entry (separate profiled run; "
                             "current tree only)")
    parser.add_argument("--service", action="store_true",
                        help="also time the clock service's serving hot "
                             "path (queries/s; current tree only)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="also time the campaign with this many "
                             "worker processes (current tree only)")
    parser.add_argument("--queue", choices=["calendar", "heap"],
                        default="calendar",
                        help="engine event-queue kernel for the engine "
                             "micro-benchmark (current tree only)")
    parser.add_argument("--delay-mode", choices=["scalar", "burst"],
                        default="scalar",
                        help="engine delay-sampling mode for the engine "
                             "micro-benchmark (current tree only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="--compare fails below this engine speedup")
    parser.add_argument("--output", default=default_output(),
                        help="benchmark JSON path (default: repo root "
                             "BENCH_engine.json)")
    args = parser.parse_args(argv)
    if not args.record and not args.compare:
        parser.error("nothing to do: pass --record LABEL and/or "
                     "--compare")
    rc = 0
    if args.record:
        rc = run_record(args)
    if rc == 0 and args.compare:
        rc = run_compare(args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
