"""Ablation: periodic re-synchronization over long horizons.

Section III-C2 bounds linear-model validity to ~0-20 s; tracing tools must
re-synchronize periodically.  This bench runs a 60-second campaign on
fast-drifting clocks and compares the end-of-run global-clock error of a
single initial synchronization against the PeriodicResyncClock extension.
"""

from repro.analysis.accuracy import ground_truth_accuracy
from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import resolve_scale
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from repro.sync.resync import PeriodicResyncClock

from conftest import emit

#: Drift fast enough that 60 s ruins a single linear model.
TWITCHY = CLOCK_GETTIME.with_(skew_walk_sigma=5e-7)

HORIZON = 60.0
CHECK_EVERY = 10.0


def run_ablation(scale):
    sc = resolve_scale(scale)
    machine = JUPITER.machine(sc.num_nodes, sc.ranks_per_node)
    state: dict = {}

    def main(ctx, comm):
        resync = state.setdefault(
            ctx.rank,
            PeriodicResyncClock(
                h2hca(nfitpoints=sc.nfitpoints,
                      fitpoint_spacing=sc.fitpoint_spacing),
                max_model_age=15.0,
            ),
        )
        initial = yield from resync.ensure(comm, ctx)
        elapsed = 0.0
        current = initial
        while elapsed < HORIZON:
            yield from ctx.elapse(CHECK_EVERY)
            elapsed += CHECK_EVERY
            current = yield from resync.ensure(comm, ctx)
        return initial, current, resync.resync_count, ctx.now

    sim = Simulation(machine=machine, network=JUPITER.network(),
                     time_source=TWITCHY, seed=0)
    values = sim.run(main).values
    t_eval = max(v[3] for v in values) + 0.1
    initial_clocks = [v[0] for v in values]
    final_clocks = [v[1] for v in values]
    resyncs = values[0][2]
    return (
        ground_truth_accuracy(initial_clocks, t_eval),
        ground_truth_accuracy(final_clocks, t_eval),
        resyncs,
    )


def test_ablation_periodic_resync(benchmark, scale):
    err_single, err_resync, resyncs = benchmark.pedantic(
        run_ablation, args=(scale,), rounds=1, iterations=1
    )
    table = Table(
        title=f"Ablation: single sync vs periodic resync over {HORIZON:.0f}s",
        columns=["strategy", "syncs", "end-of-run max error [us]"],
    )
    table.add_row("single initial sync", 1, f"{err_single * 1e6:.2f}")
    table.add_row("resync every <=15s", resyncs, f"{err_resync * 1e6:.2f}")
    emit(format_table(table))
    assert resyncs > 1
    assert err_resync < err_single / 2
