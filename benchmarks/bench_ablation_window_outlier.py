"""Ablation: outlier cascade in the window scheme vs Round-Time recovery.

Section II of the paper: with fixed windows, "one outlier can cause a
large number of subsequent measurements to be invalidated (as processes
will miss the starting time of several subsequent windows)".  Round-Time
announces every start dynamically, so one slow repetition costs at most
one measurement.  This bench injects heavy-tailed outliers and compares
the fraction of valid measurements.
"""

from dataclasses import replace

from repro.analysis.reporting import Table, format_table
from repro.bench.schemes import RoundTimeScheme, WindowScheme
from repro.cluster.machines import JUPITER
from repro.experiments.common import resolve_scale
from repro.simmpi.network import Level, LinkParams, NetworkModel
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca

from conftest import emit


def noisy_network() -> NetworkModel:
    """An IB-like fabric with frequent large outliers (congestion)."""
    return NetworkModel(
        name="noisy",
        levels={
            Level.NODE: LinkParams(latency=0.45e-6, bandwidth=6e9,
                                   jitter_scale=0.04e-6),
            Level.REMOTE: LinkParams(
                latency=1.6e-6, bandwidth=1.5e9, jitter_scale=0.15e-6,
                outlier_prob=2e-2, outlier_scale=80e-6,
            ),
        },
        o_send=0.25e-6,
        o_recv=0.25e-6,
        nic_gap=0.35e-6,
    )


def run_ablation(scale):
    sc = resolve_scale(scale)
    machine = JUPITER.machine(sc.num_nodes, sc.ranks_per_node)
    nreps = 60

    def main(ctx, comm):
        alg = main.algs.setdefault(
            ctx.rank,
            h2hca(nfitpoints=sc.nfitpoints,
                  fitpoint_spacing=sc.fitpoint_spacing),
        )
        g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)

        def op(c):
            yield from c.allreduce(1.0, size=8)

        window = WindowScheme(lambda c: g_clk, window=None, nreps=nreps,
                              window_factor=1.5)
        win_result = yield from window.run(comm, op)
        rt = RoundTimeScheme(lambda c: g_clk, max_time_slice=5.0,
                             max_nrep=nreps)
        rt_result = yield from rt.run(comm, op)
        return (win_result, rt_result)

    main.algs = {}
    sim = Simulation(
        machine=machine,
        network=noisy_network(),
        time_source=CLOCK_GETTIME.with_(skew_walk_sigma=4e-8),
        seed=0,
    )
    values = sim.run(main).values
    win_valid = min(v[0].nvalid for v in values)
    win_invalid = max(v[0].invalid for v in values)
    rt_valid = min(v[1].nvalid for v in values)
    rt_invalid = max(v[1].invalid for v in values)
    return (nreps, win_valid, win_invalid, rt_valid, rt_invalid)


def test_ablation_window_outlier_cascade(benchmark, scale):
    nreps, win_valid, win_invalid, rt_valid, rt_invalid = (
        benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                           iterations=1)
    )
    table = Table(
        title="Ablation: outlier handling, window scheme vs Round-Time",
        columns=["scheme", "attempted", "valid", "invalidated"],
    )
    table.add_row("window", nreps, win_valid, win_invalid)
    table.add_row("round_time", rt_valid + rt_invalid, rt_valid,
                  rt_invalid)
    emit(format_table(table))
    # Round-Time must retain a (strictly) larger share of valid
    # measurements than the fixed-window scheme under heavy outliers.
    assert rt_valid > win_valid
