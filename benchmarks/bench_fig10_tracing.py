"""Fig. 10: Gantt charts of the AMG allreduce under four clock setups."""

from repro.experiments import fig10_tracing

from conftest import emit


def test_fig10_tracing(benchmark, scale):
    result = benchmark.pedantic(
        fig10_tracing.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig10_tracing.format_result(result))
    # Paper shape: local clock_gettime timestamps render the event
    # invisible; global clocks make it visible under either time source.
    assert result.visibility("clock_gettime", "local") < 1e-6
    assert result.visibility("clock_gettime", "global") > 0.05
    assert result.visibility("gettimeofday", "global") > 0.05
