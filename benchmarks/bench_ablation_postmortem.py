"""Ablation: post-mortem linear interpolation vs an online global clock.

Section II cites Scalasca-style post-mortem timestamp correction (linear
interpolation between init/finalize sync points) and the finding that it
fails under non-constant drift.  This bench traces the AMG loop twice —
once with raw local clocks corrected post-mortem, once with the online
H2HCA clock — over a long, drift-heavy run and compares the resulting
event alignment (start-time spread of one allreduce, which should be
~the network skew, a few µs).
"""

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import resolve_scale
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from repro.sync.offset import SKaMPIOffset
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.gantt import gantt_bars, start_spread
from repro.trace.postmortem import PostMortemCorrector, record_sync_point
from repro.trace.tracer import Tracer

from conftest import emit

#: Drift fast enough that linearity breaks inside the traced run.
TWITCHY = CLOCK_GETTIME.with_(skew_walk_sigma=1.5e-6)

#: Simulated run length between the two sync points.
RUN_SECONDS = 60.0
ITERATION = 9


def run_ablation(scale):
    sc = resolve_scale(scale)
    machine = JUPITER.machine(sc.num_nodes, sc.ranks_per_node)
    state: dict = {}

    def main(ctx, comm):
        offset_alg = SKaMPIOffset(10)
        # Online clock (synchronized right before the traced region).
        sync = state.setdefault(
            ctx.rank,
            h2hca(nfitpoints=sc.nfitpoints,
                  fitpoint_spacing=sc.fitpoint_spacing),
        )
        # Post-mortem pipeline: sync point, long run, traced region,
        # sync point; local clocks during tracing.
        init_anchor = yield from record_sync_point(
            comm, ctx.hardware_clock, offset_alg
        )
        yield from ctx.elapse(RUN_SECONDS)
        yield from comm.barrier()
        local_tracer = Tracer(ctx.hardware_clock, comm.rank)
        yield from amg_iteration_loop(
            comm, local_tracer, AMGConfig(niterations=ITERATION + 2)
        )
        final_anchor = yield from record_sync_point(
            comm, ctx.hardware_clock, offset_alg
        )
        corrector = PostMortemCorrector(init_anchor, final_anchor)
        corrected = corrector.correct_events(local_tracer.events)

        # Online pipeline over the same phase structure.
        g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        online_tracer = Tracer(g_clk, comm.rank)
        yield from amg_iteration_loop(
            comm, online_tracer, AMGConfig(niterations=ITERATION + 2)
        )

        merged_pm = yield from _gather(comm, corrected)
        merged_online = yield from online_tracer.gather_events(comm)
        return merged_pm, merged_online

    def _gather(comm, events):
        gathered = yield from comm.gather(events, root=0,
                                          size=32 * max(1, len(events)))
        if comm.rank != 0:
            return None
        out = []
        for ev in gathered:
            out.extend(ev)
        return out

    sim = Simulation(machine=machine, network=JUPITER.network(),
                     time_source=TWITCHY, seed=1)
    merged_pm, merged_online = sim.run(main).values[0]
    spread_pm = start_spread(
        gantt_bars(merged_pm, "MPI_Allreduce", ITERATION)
    )
    spread_online = start_spread(
        gantt_bars(merged_online, "MPI_Allreduce", ITERATION)
    )
    return spread_pm, spread_online


def test_ablation_postmortem_vs_online(benchmark, scale):
    spread_pm, spread_online = benchmark.pedantic(
        run_ablation, args=(scale,), rounds=1, iterations=1
    )
    table = Table(
        title=(
            "Ablation: 10th-allreduce start spread after "
            f"{RUN_SECONDS:.0f}s of non-constant drift"
        ),
        columns=["timestamp source", "start spread [us]"],
    )
    table.add_row("post-mortem linear interpolation",
                  f"{spread_pm * 1e6:.2f}")
    table.add_row("online H2HCA global clock",
                  f"{spread_online * 1e6:.2f}")
    emit(format_table(table))
    # Under non-constant drift the post-mortem correction leaves a larger
    # residual misalignment than the freshly synchronized online clock.
    assert spread_online < spread_pm