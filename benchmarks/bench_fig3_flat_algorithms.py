"""Fig. 3: accuracy vs duration for HCA/HCA2/HCA3/JK (Jupiter)."""

from repro.experiments import fig3_flat_algorithms

from conftest import emit


def test_fig3_flat_algorithms(benchmark, scale):
    result = benchmark.pedantic(
        fig3_flat_algorithms.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig3_flat_algorithms.format_result(result))
    by = result.by_label()
    jk = next(l for l in by if l.startswith("jk"))
    hca3 = next(l for l in by if l.startswith("hca3"))
    # Paper shape: JK is the slow O(p) algorithm; the HCA family is fast.
    assert result.mean_duration(jk) > 1.3 * result.mean_duration(hca3)
    # All algorithms produce sub-5 us clocks right after synchronizing.
    for label in by:
        assert result.mean_offset(label, 0.0) < 5e-6
