"""Fig. 8: barrier-exit imbalance distributions per barrier algorithm."""

from repro.experiments import fig8_imbalance

from conftest import emit


def test_fig8_imbalance(benchmark, scale):
    result = benchmark.pedantic(
        fig8_imbalance.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig8_imbalance.format_result(result))
    means = {a: result.mean(a) for a in fig8_imbalance.ALGORITHMS}
    # Paper shape: tree is by far the best, double ring by far the worst.
    assert min(means, key=means.get) == "tree"
    assert max(means, key=means.get) == "double_ring"
    assert means["double_ring"] > 2 * means["tree"]
