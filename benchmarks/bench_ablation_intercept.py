"""Ablation: recompute_intercept on/off for HCA3.

The paper adds an optional per-pair intercept re-anchoring after each
linear regression (Algorithm 2, ``recompute_intercept``).  Its effect is
on the *instantaneous* offset right after synchronization: the anchored
intercept absorbs accumulated fit error at measurement time.
"""

import numpy as np

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import MACHINE_TIME_SOURCES, resolve_scale
from repro.experiments.common import run_sync_accuracy_campaign

from conftest import emit


def run_ablation(scale):
    sc = resolve_scale(scale)
    n, e = sc.nfitpoints, sc.nexchanges
    labels = [
        f"hca3/{n}/skampi_offset/{e}",
        f"hca3/recompute_intercept/{n}/skampi_offset/{e}",
    ]
    return run_sync_accuracy_campaign(
        spec=JUPITER, labels=labels, scale=sc, wait_times=(0.0, 10.0),
        seed=0, time_source=MACHINE_TIME_SOURCES["jupiter"],
    )


def test_ablation_recompute_intercept(benchmark, scale):
    result = benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                                iterations=1)
    table = Table(
        title="Ablation: HCA3 with/without recompute_intercept",
        columns=["configuration", "max offset @0s [us]",
                 "max offset @10s [us]"],
    )
    for label in result.by_label():
        table.add_row(
            label,
            f"{result.mean_offset(label, 0.0) * 1e6:.3f}",
            f"{result.mean_offset(label, 10.0) * 1e6:.3f}",
        )
    emit(format_table(table))
    # Both variants must produce usable clocks; the re-anchored variant
    # must not be worse at 0 s by more than measurement noise.
    for label in result.by_label():
        assert result.mean_offset(label, 0.0) < 5e-6
