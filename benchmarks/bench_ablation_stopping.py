"""Ablation: adaptive-COV repetition counts vs the Round-Time time slice.

Section V-A motivates Round-Time partly as an answer to "how many
repetitions?": a fixed time slice bounds the cost regardless of the
operation's speed, whereas adaptive stopping rules may burn unbounded
repetitions when the latency distribution refuses to stabilize (heavy
jitter), and fixed counts waste time on fast operations.  This bench
measures the same allreduce with both strategies and reports repetitions
and total measuring time.
"""

from repro.analysis.reporting import Table, format_table
from repro.bench.schemes import RoundTimeScheme
from repro.bench.stopping import AdaptiveBarrierScheme
from repro.cluster.machines import JUPITER
from repro.experiments.common import MACHINE_TIME_SOURCES, resolve_scale
from repro.simmpi.simulation import Simulation
from repro.sync.hierarchical import h2hca

from conftest import emit


def run_ablation(scale):
    sc = resolve_scale(scale)
    machine = JUPITER.machine(sc.num_nodes, sc.ranks_per_node)
    state: dict = {}

    def main(ctx, comm):
        sync = state.setdefault(
            ctx.rank,
            h2hca(nfitpoints=sc.nfitpoints,
                  fitpoint_spacing=sc.fitpoint_spacing),
        )
        g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)

        def op(c):
            yield from c.allreduce(1.0, size=8)

        t0 = ctx.now
        adaptive = AdaptiveBarrierScheme(threshold=0.05, window=10,
                                         min_nreps=20, max_nreps=500)
        adaptive_result = yield from adaptive.run(comm, op)
        t1 = ctx.now
        rt = RoundTimeScheme(lambda c: g_clk, max_time_slice=20e-3,
                             max_nrep=10_000)
        rt_result = yield from rt.run(comm, op)
        t2 = ctx.now
        return (adaptive_result.nvalid, t1 - t0,
                rt_result.nvalid, t2 - t1,
                adaptive_result.median(), rt_result.median())

    sim = Simulation(machine=machine, network=JUPITER.network(),
                     time_source=MACHINE_TIME_SOURCES["jupiter"], seed=0)
    values = sim.run(main).values
    v = values[0]
    return v


def test_ablation_stopping_rules(benchmark, scale):
    (a_reps, a_time, rt_reps, rt_time, a_median, rt_median) = (
        benchmark.pedantic(run_ablation, args=(scale,), rounds=1,
                           iterations=1)
    )
    table = Table(
        title="Ablation: adaptive COV stopping vs Round-Time slice",
        columns=["strategy", "repetitions", "measuring time [s]",
                 "median latency [us]"],
    )
    table.add_row("adaptive barrier (COV<5%)", a_reps, f"{a_time:.4f}",
                  f"{a_median * 1e6:.2f}")
    table.add_row("Round-Time (20 ms slice)", rt_reps, f"{rt_time:.4f}",
                  f"{rt_median * 1e6:.2f}")
    emit(format_table(table))
    # The time slice bounds Round-Time's cost by construction.
    assert rt_time < 0.1
    assert rt_reps > 0 and a_reps > 0
