"""Fig. 6: H2HCA vs flat HCA3 on Titan (the large machine)."""

from repro.experiments import fig6_hier_titan
from repro.experiments import fig4_hier_jupiter

from conftest import emit


def test_fig6_hier_titan(benchmark, scale):
    result = benchmark.pedantic(
        fig6_hier_titan.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig6_hier_titan.format_result(result))
    # Paper shape: the large machine shows larger offsets than Jupiter's
    # runs at the same waiting time (compare Fig. 4).
    jup = fig4_hier_jupiter.run(scale=scale, seed=0)
    t_label = sorted(result.by_label())[0]
    j_label = sorted(jup.by_label())[0]
    assert result.mean_offset(t_label, 10.0) > jup.mean_offset(
        j_label, 10.0
    )
