"""Fig. 5: H2HCA vs flat HCA3 on Hydra (faster network, twitchier clocks)."""

from repro.experiments import fig5_hier_hydra

from conftest import emit


def test_fig5_hier_hydra(benchmark, scale):
    result = benchmark.pedantic(
        fig5_hier_hydra.run,
        kwargs=dict(scale=scale, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(fig5_hier_hydra.format_result(result))
    by = result.by_label()
    # Paper shape: very accurate right after sync (OmniPath's low
    # latency), visibly degraded after 10 s (fast-changing drift).
    for label in by:
        assert result.mean_offset(label, 0.0) < 3e-6
        assert result.mean_offset(label, 10.0) > result.mean_offset(
            label, 0.0
        )
