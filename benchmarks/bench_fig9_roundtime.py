"""Fig. 9: OSU (barrier) vs ReproMPI Round-Time across message sizes."""

from repro.experiments import fig9_roundtime

from conftest import emit

MSIZES = {
    "quick": (4, 16, 128, 1024),
    "default": fig9_roundtime.MSIZES,
}


def test_fig9_roundtime(benchmark, scale):
    result = benchmark.pedantic(
        fig9_roundtime.run,
        kwargs=dict(scale=scale, seed=0, nmpiruns=2,
                    msizes=MSIZES[scale]),
        rounds=1,
        iterations=1,
    )
    emit(fig9_roundtime.format_result(result))
    # Paper shape: barrier-based OSU reports inflated latencies at small
    # message sizes; the gap closes as the payload grows.
    assert result.inflation(4) > 1.05
    assert result.inflation(1024) < result.inflation(4)
