"""Fig. 2: clock drift over time; linearity over short windows."""

from repro.experiments import fig2_drift

from conftest import emit

SCALES = {
    # (num_nodes, duration seconds)
    "quick": (4, 60.0),
    "default": (10, 200.0),
}


def test_fig2_drift(benchmark, scale):
    nodes, duration = SCALES[scale]
    result = benchmark.pedantic(
        fig2_drift.run,
        kwargs=dict(num_nodes=nodes, duration=duration, interval=1.0),
        rounds=1,
        iterations=1,
    )
    emit(fig2_drift.format_result(result))
    # Paper shape: drift linear over ~10 s (R^2 > 0.9) but a 10 s fit
    # extrapolated to the full horizon misses by a large margin.
    assert result.r2_short_window > 0.9
    assert result.max_extrapolation_error > 5e-6
