"""Run every experiment at the default reproduction scale; save outputs.

Campaign experiments (fig3-fig6) fan their mpiruns out over worker
processes (``jobs=0`` = one per CPU); results are identical to serial.
"""
import time, traceback
from repro.experiments import (
    table1_machines, fig2_drift, fig3_flat_algorithms, fig4_hier_jupiter,
    fig5_hier_hydra, fig6_hier_titan, fig7_barrier_impact, fig8_imbalance,
    fig9_roundtime, fig10_tracing,
)

JOBS = [
    ("table1", lambda: table1_machines.format_result(table1_machines.run())),
    ("fig2", lambda: fig2_drift.format_result(
        fig2_drift.run(num_nodes=10, duration=200.0, interval=1.0))),
    ("fig3", lambda: fig3_flat_algorithms.format_result(
        fig3_flat_algorithms.run("default", jobs=0))),
    ("fig4", lambda: fig4_hier_jupiter.format_result(
        fig4_hier_jupiter.run("default", jobs=0))),
    ("fig5", lambda: fig5_hier_hydra.format_result(
        fig5_hier_hydra.run("default", jobs=0))),
    ("fig6", lambda: fig6_hier_titan.format_result(
        fig6_hier_titan.run("default", jobs=0))),
    ("fig7", lambda: fig7_barrier_impact.format_result(
        fig7_barrier_impact.run("default"))),
    ("fig8", lambda: fig8_imbalance.format_result(
        fig8_imbalance.run("default"))),
    ("fig9", lambda: fig9_roundtime.format_result(
        fig9_roundtime.run("default"))),
    ("fig10", lambda: fig10_tracing.format_result(
        fig10_tracing.run("default"))),
]

for name, job in JOBS:
    t = time.time()
    try:
        out = job()
    except Exception:
        out = traceback.format_exc()
    wall = time.time() - t
    with open(f"/root/repo/results/{name}.txt", "w") as fh:
        fh.write(out + f"\n[wall: {wall:.1f}s]\n")
    print(f"{name}: done in {wall:.1f}s", flush=True)
