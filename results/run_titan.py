import time, traceback
from repro.experiments import fig6_hier_titan, fig9_roundtime
for name, job in [
    ("fig6", lambda: fig6_hier_titan.format_result(
        fig6_hier_titan.run("default", jobs=0))),
    ("fig9", lambda: fig9_roundtime.format_result(fig9_roundtime.run("default"))),
]:
    t = time.time()
    try:
        out = job()
    except Exception:
        out = traceback.format_exc()
    with open(f"/root/repo/results/{name}.txt", "w") as fh:
        fh.write(out + f"\n[wall: {time.time()-t:.1f}s]\n")
    print(name, "done", flush=True)
